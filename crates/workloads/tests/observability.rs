//! The observability layer's contract, end-to-end:
//!
//! * **Determinism** — two observed replays of the same seeded workload emit
//!   byte-identical JSONL trace streams.
//! * **Purity** — installing an observer changes nothing: the replay report
//!   (and its fingerprint) is equal with and without one, for every policy.
//! * **Conservation** — the per-phase ledger sums to the untraced
//!   `CostTracker` totals bit-for-bit, on every event of a 64-case seeded
//!   sweep over scenarios × policies × kinds × schedulers.

use rand::rngs::StdRng;
use rand::SeedableRng;

use kkt_congest::Scheduler;
use kkt_core::TreeKind;
use kkt_graphs::{generators, Graph};
use kkt_workloads::{
    JsonlObserver, MaintenancePolicy, MixedPhases, Observer, PhaseAccumulator, PoissonChurn,
    ReplayConfig, ReplayHarness, Scenario, TraceRecord, Workload,
};

fn base(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::connected_gnp(n, 0.3, 300, &mut rng)
}

fn mixed_workload(g: &Graph, events: usize, seed: u64) -> Workload {
    MixedPhases::standard(300).generate(g, events, seed)
}

#[test]
fn mixed_lifecycle_traces_are_byte_identical_across_runs() {
    let g = base(24, 0x0B5);
    let w = mixed_workload(&g, 10, 17);
    let harness = ReplayHarness::default();
    for policy in MaintenancePolicy::all_for(TreeKind::Mst) {
        let mut streams: Vec<Vec<u8>> = Vec::new();
        for _ in 0..2 {
            let mut obs = JsonlObserver::with_flush_every(Vec::new(), 3);
            harness.replay_observed(&g, &w, policy, &mut obs).unwrap();
            streams.push(obs.into_inner());
        }
        assert!(!streams[0].is_empty(), "{}: trace has records", policy.label());
        assert_eq!(streams[0], streams[1], "{}: same seed ⇒ same bytes", policy.label());
        // Every line is a well-formed, conserving record of the schema.
        let text = String::from_utf8(streams[0].clone()).unwrap();
        assert_eq!(text.lines().count(), w.len(), "one record per top-level event");
        for (i, line) in text.lines().enumerate() {
            let record: TraceRecord = serde_json::from_str(line).unwrap();
            assert_eq!(record.index, i);
            assert_eq!(record.total, record.phases.total());
            assert!(record.checkpoint == "verified" || record.checkpoint == "skipped");
        }
    }
}

#[test]
fn observation_is_pure_reports_and_fingerprints_match() {
    let g = base(24, 0x0B6);
    let w = mixed_workload(&g, 8, 23);
    let harness = ReplayHarness::default();
    for policy in MaintenancePolicy::all_for(TreeKind::Mst) {
        let plain = harness.replay(&g, &w, policy).unwrap();
        let mut acc = PhaseAccumulator::new();
        let observed = harness.replay_observed(&g, &w, policy, &mut acc).unwrap();
        assert_eq!(plain, observed, "{}: observer must not perturb the replay", policy.label());
        assert_eq!(plain.fingerprint(), observed.fingerprint());
        assert_eq!(acc.events, w.len());
    }
}

/// An observer that re-checks conservation on every single event (the
/// harness asserts it too — this keeps the check alive even if the harness
/// assert is ever relaxed) and accumulates for the run-level comparison.
#[derive(Default)]
struct ConservationCheck {
    acc: PhaseAccumulator,
}

impl Observer for ConservationCheck {
    fn on_event(&mut self, record: &TraceRecord) {
        assert_eq!(record.total, record.phases.total(), "event {} conserves", record.index);
        self.acc.on_event(record);
    }
}

#[test]
fn phase_ledger_conserves_across_the_64_case_sweep() {
    // 2 graph seeds × 2 scenarios × 2 kinds × 2 schedulers × 4 policies.
    let mut cases = 0;
    for graph_seed in [1u64, 2] {
        let g = base(20, graph_seed);
        for scenario_ix in 0..2 {
            for kind in [TreeKind::Mst, TreeKind::St] {
                let scenario: Box<dyn Scenario> = match scenario_ix {
                    0 => Box::new(PoissonChurn { delete_fraction: 0.5, max_weight: 300 }),
                    _ => Box::new(MixedPhases::standard(300)),
                };
                let w = scenario.generate(&g, 6, 31 + graph_seed);
                for scheduler in [Scheduler::Synchronous, Scheduler::RandomAsync { max_delay: 6 }] {
                    let harness = ReplayHarness::new(ReplayConfig {
                        kind,
                        scheduler,
                        ..ReplayConfig::default()
                    });
                    for policy in MaintenancePolicy::all_for(kind) {
                        let mut check = ConservationCheck::default();
                        let report = harness.replay_observed(&g, &w, policy, &mut check).unwrap();
                        let sum = check.acc.ledger.total();
                        assert_eq!(sum.messages, report.total.messages);
                        assert_eq!(sum.bits, report.total.bits);
                        assert_eq!(sum.time, report.total.time);
                        assert_eq!(sum.broadcast_echoes, report.total.broadcast_echoes);
                        cases += 1;
                    }
                }
            }
        }
    }
    assert_eq!(cases, 64, "the sweep covers all 64 cases");
}
