//! Superpolynomial weights under churn — the ROADMAP item started as a
//! regression test (the dynamic side of exp7 / Appendix A).
//!
//! Appendix A's claim: `FindMin` narrows the candidate weight interval by a
//! factor of the word width `w` per broadcast-and-echo, so repair cost under
//! a `maxWt` weight universe carries a `log(maxWt) / log w` factor — *not* a
//! `log(maxWt)` factor, and certainly not anything polynomial in `maxWt`.
//! exp7 checks this for one-shot `FindMin` calls; these tests drive the
//! *maintained* forest through hot-edge weight-drift traces over weight
//! universes up to the 63-bit regime, asserting that
//!
//! * every oracle checkpoint verifies (paranoid mode: the incremental
//!   oracle *and* a full sequential Kruskal cross-check per checkpoint),
//!   i.e. repairs stay correct while weights drift over huge universes, and
//! * per-event repair bits grow no faster than the narrowing bound
//!   `(weight_bits + 2·lg n) / lg w` predicts between the 8-bit and 63-bit
//!   regimes, with bounded slack.

use rand::rngs::StdRng;
use rand::SeedableRng;

use kkt_core::KktConfig;
use kkt_graphs::generators;
use kkt_workloads::{
    MaintenancePolicy, ReplayConfig, ReplayHarness, ReplayReport, Scenario, WeightDrift,
};

const N: usize = 40;
const EVENTS: usize = 16;
const SEED: u64 = 0x5EED_CFFF;

/// Max raw weight of a `weight_bits`-bit universe (63 caps below the
/// `UniqueWeight` headroom, exactly as exp7 does).
fn universe(weight_bits: u32) -> u64 {
    if weight_bits >= 63 {
        u64::MAX / 2
    } else {
        (1u64 << weight_bits) - 1
    }
}

/// Replays a hot-edge weight-drift trace whose base graph and drift both
/// live in the given weight universe, under sequential impromptu repair
/// with paranoid checkpoints every other event.
fn drift_replay(weight_bits: u32) -> ReplayReport {
    let max_weight = universe(weight_bits);
    let mut rng = StdRng::seed_from_u64(SEED);
    let g = generators::connected_with_edges(N, 4 * N, max_weight, &mut rng);
    let scenario = WeightDrift { hot_fraction: 0.3, drift: 0.9, max_weight };
    let workload = scenario.generate(&g, EVENTS, SEED ^ u64::from(weight_bits));
    let harness = ReplayHarness::new(ReplayConfig {
        verify_every: 2,
        paranoid: true,
        ..ReplayConfig::default()
    });
    harness.replay(&g, &workload, MaintenancePolicy::Impromptu).unwrap_or_else(|e| {
        panic!("{weight_bits}-bit weight-drift replay failed: {e}");
    })
}

/// The narrowing budget Appendix A prices: total disambiguated weight bits
/// (raw weight ++ edge number, as `UniqueWeight` concatenates them) over
/// `lg w`.
fn narrowing_budget(weight_bits: u32) -> f64 {
    let config = KktConfig::default();
    let w = f64::from(config.effective_word_width(N));
    let total_bits = f64::from(weight_bits) + 2.0 * (N as f64).log2().ceil();
    total_bits / w.log2().max(1.0)
}

#[test]
fn weight_drift_checkpoints_verify_across_weight_universes() {
    for weight_bits in [8u32, 16, 32, 48, 63] {
        let report = drift_replay(weight_bits);
        assert_eq!(report.top_level_events, EVENTS, "{weight_bits}-bit: full trace replayed");
        assert_eq!(
            report.checkpoints_verified,
            EVENTS / 2,
            "{weight_bits}-bit: every paranoid checkpoint verified"
        );
        assert!(report.total.bits > 0, "{weight_bits}-bit: the drift forced real repairs");
        eprintln!(
            "weight_bits={weight_bits}: total_bits={} max/event={} budget={:.1}",
            report.total.bits,
            report.max_messages_per_event,
            narrowing_budget(weight_bits)
        );
    }
}

/// The most expensive single event of a replay — a weight-drift trace mixes
/// no-ops (collided weights), announce-only re-justifications (~2n msgs)
/// and real `FindMin`-bearing repairs; the max isolates one full repair,
/// which is the unit Appendix A prices.
fn max_event(r: &ReplayReport) -> (f64, f64) {
    let msgs = r.per_event.iter().map(|e| e.messages).max().expect("non-empty") as f64;
    let bits = r.per_event.iter().map(|e| e.bits).max().expect("non-empty") as f64;
    (msgs, bits)
}

#[test]
fn repair_bits_stay_narrowing_bounded_as_weights_grow() {
    let small = drift_replay(8);
    let big = drift_replay(63);
    // Message count per repair scales with the narrowing count alone
    // (`FindMin` pays one broadcast-and-echo per interval narrowing); the
    // *bit* count additionally scales with the per-message width, which
    // itself carries a disambiguated weight — so bits are bounded by
    // narrowings × width, i.e. the ratio squared. A polynomial-in-maxWt
    // cost (what the narrowing machinery exists to prevent) would blow both
    // bounds apart: maxWt grows by 2^55 between these two regimes.
    let narrowing_ratio = narrowing_budget(63) / narrowing_budget(8);
    let (small_msgs, small_bits) = max_event(&small);
    let (big_msgs, big_bits) = max_event(&big);
    let observed_msgs = big_msgs / small_msgs.max(1.0);
    let observed_bits = big_bits / small_bits.max(1.0);
    eprintln!(
        "narrowing ratio {narrowing_ratio:.2}: observed max-event msgs {observed_msgs:.2}x, \
         bits {observed_bits:.2}x"
    );
    assert!(
        observed_msgs <= narrowing_ratio * 1.5,
        "a 63-bit repair sends {observed_msgs:.2}x the 8-bit messages; the narrowing bound \
         (log maxWt / log w) allows at most {narrowing_ratio:.2}x (+50% slack)"
    );
    assert!(
        observed_bits <= narrowing_ratio * narrowing_ratio * 1.5,
        "a 63-bit repair costs {observed_bits:.2}x the 8-bit bits; narrowings x width allows \
         at most {:.2}x (+50% slack)",
        narrowing_ratio * narrowing_ratio
    );
    // And the sanity floor: wider weight universes genuinely cost more —
    // the bound is doing work, it is not vacuously large.
    assert!(observed_msgs > 1.0, "the 63-bit regime must be more expensive than the 8-bit one");
}

#[test]
fn repair_messages_stay_within_the_findmin_budget_at_every_universe() {
    // The absolute regression guard: one repair's messages are bounded by
    // O(n) per broadcast-and-echo times the narrowing budget (plus the
    // O(lg n) whole-interval waves), with a fitted constant at ~3x headroom.
    // A regression to lg(maxWt)-many narrowings (dropping the /lg w) or to
    // Θ(m)-sized waves would blow through it at the wide universes.
    for weight_bits in [8u32, 32, 63] {
        let report = drift_replay(weight_bits);
        let (max_msgs, _) = max_event(&report);
        let budget = 16.0 * N as f64 * (narrowing_budget(weight_bits) + (N as f64).log2().ceil());
        assert!(
            max_msgs <= budget,
            "{weight_bits}-bit: a single repair sent {max_msgs} messages, budget {budget:.0}"
        );
    }
}
