//! A named, seeded, replayable trace of dynamic-network events.

use serde::{Deserialize, Serialize};

use kkt_graphs::{kruskal, Graph};

use crate::event::WorkloadEvent;
use crate::fingerprint::fingerprint_hex;

/// A deterministic dynamic-network trace: the output of a scenario
/// generator, the input of the replay harness.
///
/// Two [`Workload`]s generated from the same scenario, base graph and seed
/// are identical — including their [`Workload::fingerprint`] — which is what
/// makes experiment reports reproducible byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Human-readable name (defaults to the scenario id).
    pub name: String,
    /// Identifier of the generating scenario (e.g. `poisson_churn(0.50)`).
    pub scenario: String,
    /// The seed the trace was generated from.
    pub seed: u64,
    /// Node count of the base graph the trace applies to.
    pub n: usize,
    /// The events, in replay order.
    pub events: Vec<WorkloadEvent>,
}

/// Statistics of a validated trace (computed by [`Workload::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Primitive deletions (inside and outside bursts).
    pub deletions: usize,
    /// Deletions that hit an edge of the evolving graph's current minimum
    /// spanning forest — the expensive case for impromptu repair.
    pub tree_edge_deletions: usize,
    /// Primitive insertions.
    pub insertions: usize,
    /// Primitive weight changes.
    pub weight_changes: usize,
    /// Burst events (however many primitives each contains).
    pub bursts: usize,
    /// Largest number of connected components the graph reaches at any
    /// event boundary (1 = the trace keeps the network connected).
    pub max_components: usize,
    /// Live edges after the whole trace.
    pub final_edges: usize,
}

impl Workload {
    /// Number of top-level events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of primitive events (bursts flattened).
    pub fn primitive_count(&self) -> usize {
        self.events.iter().map(WorkloadEvent::primitive_count).sum()
    }

    /// Appends another trace (scenario ids are joined with `+`).
    #[must_use]
    pub fn concat(mut self, other: Workload) -> Workload {
        self.scenario = format!("{}+{}", self.scenario, other.scenario);
        self.name = format!("{}+{}", self.name, other.name);
        self.events.extend(other.events);
        self
    }

    /// A stable 64-bit FNV-1a fingerprint of the canonical JSON encoding.
    /// Equal traces fingerprint equal; a one-event difference changes it.
    pub fn fingerprint(&self) -> String {
        fingerprint_hex(&serde_json::to_string(self).expect("workload serialises"))
    }

    /// Checks that the trace is applicable to `base` (right node count,
    /// every primitive applicable in order) without computing statistics —
    /// unlike [`Workload::validate`] this never runs the Kruskal oracle, so
    /// it is the cheap pre-flight check the replay harness uses.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inapplicable event.
    pub fn check_applicable(&self, base: &Graph) -> Result<(), String> {
        if base.node_count() != self.n {
            return Err(format!(
                "workload was generated for n = {}, got a base graph with n = {}",
                self.n,
                base.node_count()
            ));
        }
        let mut shadow = base.clone();
        for (i, event) in self.events.iter().enumerate() {
            event.apply_to_graph(&mut shadow).map_err(|e| format!("event {i}: {e}"))?;
        }
        Ok(())
    }

    /// Replays the trace against a shadow copy of `base`, checking that
    /// every primitive is applicable in order, and collects [`WorkloadStats`]
    /// (tree-edge hit counts are measured against the evolving Kruskal MST,
    /// i.e. "at generation time" rather than during distributed replay).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inapplicable event.
    pub fn validate(&self, base: &Graph) -> Result<WorkloadStats, String> {
        if base.node_count() != self.n {
            return Err(format!(
                "workload was generated for n = {}, got a base graph with n = {}",
                self.n,
                base.node_count()
            ));
        }
        let mut shadow = base.clone();
        let mut stats =
            WorkloadStats { max_components: shadow.component_count(), ..WorkloadStats::default() };
        for (i, event) in self.events.iter().enumerate() {
            if let WorkloadEvent::Burst { .. } = event {
                stats.bursts += 1;
            }
            for primitive in event.primitives() {
                match *primitive {
                    WorkloadEvent::DeleteEdge { u, v } => {
                        stats.deletions += 1;
                        let forest = kruskal(&shadow);
                        if let Some(e) = shadow.edge_between(u, v) {
                            if forest.contains(e) {
                                stats.tree_edge_deletions += 1;
                            }
                        }
                    }
                    WorkloadEvent::InsertEdge { .. } => stats.insertions += 1,
                    WorkloadEvent::ChangeWeight { .. } => stats.weight_changes += 1,
                    WorkloadEvent::Burst { .. } => unreachable!("primitives() flattens bursts"),
                }
                primitive.apply_to_graph(&mut shadow).map_err(|e| format!("event {i}: {e}"))?;
                stats.max_components = stats.max_components.max(shadow.component_count());
            }
        }
        stats.final_edges = shadow.edge_count();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kkt_graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base() -> Graph {
        let mut rng = StdRng::seed_from_u64(3);
        generators::connected_gnp(12, 0.4, 50, &mut rng)
    }

    fn tiny_workload(g: &Graph) -> Workload {
        let e = g.live_edges().next().unwrap();
        let edge = *g.edge(e);
        Workload {
            name: "tiny".into(),
            scenario: "hand_rolled".into(),
            seed: 1,
            n: g.node_count(),
            events: vec![
                WorkloadEvent::ChangeWeight { u: edge.u, v: edge.v, weight: 99 },
                WorkloadEvent::Burst {
                    events: vec![
                        WorkloadEvent::DeleteEdge { u: edge.u, v: edge.v },
                        WorkloadEvent::InsertEdge { u: edge.u, v: edge.v, weight: 1 },
                    ],
                },
            ],
        }
    }

    #[test]
    fn validate_collects_stats() {
        let g = base();
        let w = tiny_workload(&g);
        let stats = w.validate(&g).unwrap();
        assert_eq!(stats.deletions, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.weight_changes, 1);
        assert_eq!(stats.bursts, 1);
        assert_eq!(stats.final_edges, g.edge_count());
        assert_eq!(w.primitive_count(), 3);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn validate_rejects_wrong_base() {
        let g = base();
        let w = tiny_workload(&g);
        let mut wrong = Graph::new(5);
        wrong.add_edge(0, 1, 1);
        assert!(w.validate(&wrong).is_err());
        assert!(w.check_applicable(&wrong).is_err());
        assert!(w.check_applicable(&g).is_ok());
        // An inapplicable event is reported with its index.
        let mut broken = w.clone();
        broken.events.insert(0, WorkloadEvent::DeleteEdge { u: 0, v: 0 });
        let err = broken.validate(&g).unwrap_err();
        assert!(err.contains("event 0"), "{err}");
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let g = base();
        let w = tiny_workload(&g);
        assert_eq!(w.fingerprint(), w.fingerprint());
        let mut other = w.clone();
        other.events.pop();
        assert_ne!(w.fingerprint(), other.fingerprint());
    }

    #[test]
    fn concat_joins_events_and_names() {
        let g = base();
        let w = tiny_workload(&g);
        let combined = w.clone().concat(w.clone());
        assert_eq!(combined.len(), 2 * w.len());
        assert_eq!(combined.scenario, "hand_rolled+hand_rolled");
    }

    #[test]
    fn workload_round_trips_through_json() {
        let g = base();
        let w = tiny_workload(&g);
        let text = serde_json::to_string_pretty(&w).unwrap();
        let back: Workload = serde_json::from_str(&text).unwrap();
        assert_eq!(back, w);
        assert_eq!(back.fingerprint(), w.fingerprint());
    }
}
