//! The event vocabulary of a dynamic-network trace.

use serde::{Deserialize, Serialize};

use kkt_graphs::generators::Update;
use kkt_graphs::{Graph, NodeId, Weight};

/// One step of a dynamic-network scenario.
///
/// Events name endpoints, not edge handles: [`kkt_graphs::EdgeId`]s are
/// simulation artefacts that change when an edge is re-inserted, while the
/// endpoint pair is what a network operator (and the paper's repair
/// algorithms) actually see.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadEvent {
    /// Delete the live edge `{u, v}`.
    DeleteEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Insert a new edge `{u, v}` with the given weight.
    InsertEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// Raw weight of the new edge.
        weight: Weight,
    },
    /// Change the weight of live edge `{u, v}` to `weight`.
    ChangeWeight {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// The new raw weight.
        weight: Weight,
    },
    /// A batched burst: the contained events hit the network back-to-back,
    /// with no verification (and for rebuild policies, no rebuild) between
    /// them. This is how correlated failures — a rack losing power, a
    /// partition healing — are expressed.
    Burst {
        /// The events of the burst, in order. Generators only produce flat
        /// bursts (no burst-in-burst), but replay tolerates nesting.
        events: Vec<WorkloadEvent>,
    },
}

impl WorkloadEvent {
    /// Number of primitive (non-burst) events, counting nested bursts.
    pub fn primitive_count(&self) -> usize {
        match self {
            WorkloadEvent::Burst { events } => events.iter().map(Self::primitive_count).sum(),
            _ => 1,
        }
    }

    /// Flattens into primitive events (bursts expanded in order).
    pub fn primitives(&self) -> Vec<&WorkloadEvent> {
        match self {
            WorkloadEvent::Burst { events } => events.iter().flat_map(Self::primitives).collect(),
            other => vec![other],
        }
    }

    /// A short label for cost tables and per-event reports.
    pub fn kind(&self) -> String {
        match self {
            WorkloadEvent::DeleteEdge { .. } => "delete".to_string(),
            WorkloadEvent::InsertEdge { .. } => "insert".to_string(),
            WorkloadEvent::ChangeWeight { .. } => "change_weight".to_string(),
            WorkloadEvent::Burst { events } => format!("burst({})", events.len()),
        }
    }

    /// Converts a *primitive* event into the [`Update`] vocabulary of
    /// `kkt_graphs::generators`, deciding increase-vs-decrease against the
    /// graph's current weight.
    ///
    /// Returns `None` for bursts (callers flatten first) — and for a weight
    /// change whose edge is missing, leaving the error to the applying layer.
    pub fn as_update(&self, g: &Graph) -> Option<Update> {
        match *self {
            WorkloadEvent::DeleteEdge { u, v } => Some(Update::Delete { u, v }),
            WorkloadEvent::InsertEdge { u, v, weight } => Some(Update::Insert { u, v, weight }),
            WorkloadEvent::ChangeWeight { u, v, weight } => {
                let edge = g.edge_between(u, v)?;
                if weight >= g.edge(edge).weight {
                    Some(Update::IncreaseWeight { u, v, weight })
                } else {
                    Some(Update::DecreaseWeight { u, v, weight })
                }
            }
            WorkloadEvent::Burst { .. } => None,
        }
    }

    /// Applies the event to a plain (shadow) graph, mirroring exactly what
    /// the simulated network would do. Used by trace validation and by the
    /// rebuild policies.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inapplicable primitive (deleting a
    /// missing edge, inserting a duplicate, reweighting a missing edge).
    pub fn apply_to_graph(&self, g: &mut Graph) -> Result<(), String> {
        match *self {
            WorkloadEvent::DeleteEdge { u, v } => {
                g.remove_edge(u, v).map(|_| ()).ok_or(format!("delete of missing edge ({u}, {v})"))
            }
            WorkloadEvent::InsertEdge { u, v, weight } => g
                .add_edge(u, v, weight)
                .map(|_| ())
                .ok_or(format!("insert of duplicate or invalid edge ({u}, {v})")),
            WorkloadEvent::ChangeWeight { u, v, weight } => g
                .set_weight(u, v, weight)
                .map(|_| ())
                .ok_or(format!("weight change of missing edge ({u}, {v})")),
            WorkloadEvent::Burst { ref events } => {
                for e in events {
                    e.apply_to_graph(g)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5).unwrap();
        g.add_edge(1, 2, 7).unwrap();
        g
    }

    #[test]
    fn primitive_count_flattens_bursts() {
        let burst = WorkloadEvent::Burst {
            events: vec![
                WorkloadEvent::DeleteEdge { u: 0, v: 1 },
                WorkloadEvent::Burst {
                    events: vec![WorkloadEvent::InsertEdge { u: 0, v: 2, weight: 1 }],
                },
            ],
        };
        assert_eq!(burst.primitive_count(), 2);
        assert_eq!(burst.primitives().len(), 2);
        assert_eq!(burst.kind(), "burst(2)");
    }

    #[test]
    fn as_update_picks_weight_direction() {
        let g = path3();
        let up = WorkloadEvent::ChangeWeight { u: 0, v: 1, weight: 9 }.as_update(&g);
        assert!(matches!(up, Some(Update::IncreaseWeight { weight: 9, .. })));
        let down = WorkloadEvent::ChangeWeight { u: 0, v: 1, weight: 2 }.as_update(&g);
        assert!(matches!(down, Some(Update::DecreaseWeight { weight: 2, .. })));
        assert!(WorkloadEvent::ChangeWeight { u: 0, v: 2, weight: 2 }.as_update(&g).is_none());
    }

    #[test]
    fn apply_to_graph_validates() {
        let mut g = path3();
        WorkloadEvent::DeleteEdge { u: 0, v: 1 }.apply_to_graph(&mut g).unwrap();
        assert!(WorkloadEvent::DeleteEdge { u: 0, v: 1 }.apply_to_graph(&mut g).is_err());
        WorkloadEvent::InsertEdge { u: 0, v: 1, weight: 3 }.apply_to_graph(&mut g).unwrap();
        assert!(WorkloadEvent::InsertEdge { u: 0, v: 1, weight: 3 }
            .apply_to_graph(&mut g)
            .is_err());
        WorkloadEvent::ChangeWeight { u: 0, v: 1, weight: 8 }.apply_to_graph(&mut g).unwrap();
    }

    #[test]
    fn events_round_trip_through_json() {
        let e = WorkloadEvent::Burst {
            events: vec![
                WorkloadEvent::DeleteEdge { u: 1, v: 2 },
                WorkloadEvent::InsertEdge { u: 0, v: 2, weight: 11 },
                WorkloadEvent::ChangeWeight { u: 0, v: 1, weight: 4 },
            ],
        };
        let text = serde_json::to_string(&e).unwrap();
        let back: WorkloadEvent = serde_json::from_str(&text).unwrap();
        assert_eq!(back, e);
    }
}
