//! Ready-made scenario suites: generate the standard battery, replay it
//! under every applicable policy, and seal a comparison report.

use rand::rngs::StdRng;
use rand::SeedableRng;

use kkt_congest::Scheduler;
use kkt_core::TreeKind;
use kkt_graphs::{generators, Graph};

use crate::replay::{MaintenancePolicy, ReplayConfig, ReplayError, ReplayHarness};
use crate::report::{scheduler_label, ChurnSuiteReport, ScenarioComparison};
use crate::scenarios::standard_suite;

/// Parameters of a churn-suite run.
#[derive(Debug, Clone, Copy)]
pub struct SuiteParams {
    /// Nodes of the base graph.
    pub n: usize,
    /// Target live edges of the base graph.
    pub m: usize,
    /// Maximum raw weight.
    pub max_weight: u64,
    /// Top-level events per scenario.
    pub events: usize,
    /// Master seed (graph, traces, protocol coins, delivery delays).
    pub seed: u64,
    /// Which structure to maintain.
    pub kind: TreeKind,
    /// Delivery model for repairs (and scheduler-tolerant rebuilds).
    pub scheduler: Scheduler,
    /// Oracle checkpoint interval (`0` = final event only).
    pub verify_every: usize,
}

impl Default for SuiteParams {
    fn default() -> Self {
        Self::with_n(48)
    }
}

impl SuiteParams {
    /// Default-shaped parameters for an arbitrary `n`: the target edge count
    /// is *derived* from `n` at the default density ratio `m/n = 4` (the
    /// old `Default` hard-coded `m = 4 * 48` as a literal, so overriding `n`
    /// silently kept a 48-node edge budget).
    pub fn with_n(n: usize) -> Self {
        SuiteParams {
            n,
            m: 4 * n,
            max_weight: 1_000,
            events: 16,
            seed: 0xC0DE,
            kind: TreeKind::Mst,
            scheduler: Scheduler::RandomAsync { max_delay: 8 },
            verify_every: 4,
        }
    }

    /// The `KKT_SCALE=large` presets of the scale sweeps (exp9, exp11),
    /// tuned for n ∈ {256, 1024, 4096}: density stays at the default ratio
    /// while the event budget and checkpoint interval taper with `n`, so a
    /// single scenario stays inside a CI-sized wall-clock at n = 1024 and
    /// above.
    pub fn scale_preset(n: usize) -> Self {
        let (events, verify_every) = if n >= 4096 {
            (8, 0) // final-event checkpoint only
        } else if n >= 1024 {
            (12, 6)
        } else {
            (16, 4)
        };
        SuiteParams { events, verify_every, ..Self::with_n(n) }
    }

    /// The deterministic base graph of the run.
    pub fn base_graph(&self) -> Graph {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xBA5E_6AF0);
        generators::connected_with_edges(self.n, self.m, self.max_weight, &mut rng)
    }
}

/// Generates the standard scenario battery over the params' base graph and
/// replays every scenario under every policy applicable to `params.kind`.
///
/// # Errors
///
/// Propagates the first replay failure (including oracle mismatches — a
/// suite report is only produced when every checkpoint verified).
pub fn run_churn_suite(params: &SuiteParams) -> Result<ChurnSuiteReport, ReplayError> {
    let base = params.base_graph();
    let harness = ReplayHarness::new(ReplayConfig {
        kind: params.kind,
        scheduler: params.scheduler,
        verify_every: params.verify_every,
        seed: params.seed,
        paranoid: false,
    });
    let mut scenarios = Vec::new();
    for scenario in standard_suite(params.max_weight) {
        let workload = scenario.generate(&base, params.events, params.seed);
        let stats = workload.validate(&base).map_err(ReplayError::InvalidTrace)?;
        let mut reports = Vec::new();
        for policy in MaintenancePolicy::all_for(params.kind) {
            reports.push(harness.replay(&base, &workload, policy)?);
        }
        scenarios.push(ScenarioComparison {
            scenario: workload.scenario.clone(),
            workload_fingerprint: workload.fingerprint(),
            stats,
            reports,
        });
    }
    let mut report = ChurnSuiteReport {
        n: base.node_count(),
        m: base.edge_count(),
        events_per_scenario: params.events,
        seed: params.seed,
        tree_kind: match params.kind {
            TreeKind::Mst => "mst".to_string(),
            TreeKind::St => "st".to_string(),
        },
        scheduler: scheduler_label(params.scheduler),
        scenarios,
        fingerprint: String::new(),
    };
    report.seal();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SuiteParams {
        SuiteParams { n: 16, m: 40, events: 4, verify_every: 2, ..SuiteParams::default() }
    }

    #[test]
    fn suite_runs_and_seals() {
        let report = run_churn_suite(&tiny()).unwrap();
        assert_eq!(report.scenarios.len(), 5);
        for s in &report.scenarios {
            assert_eq!(s.reports.len(), 4, "{}", s.scenario);
            for r in &s.reports {
                assert!(r.checkpoints_verified > 0);
            }
        }
        assert_eq!(report.fingerprint.len(), 16);
    }

    #[test]
    fn with_n_keeps_the_density_ratio() {
        let d = SuiteParams::default();
        assert_eq!(d.n, 48);
        assert_eq!(d.m, 4 * d.n, "default m is derived from n");
        for n in [16usize, 48, 256, 1024, 4096] {
            let p = SuiteParams::with_n(n);
            assert_eq!(p.n, n);
            assert_eq!(p.m, 4 * n, "with_n must keep m/n = 4");
            assert_eq!(p.events, d.events);
            assert_eq!(p.verify_every, d.verify_every);
            assert_eq!(p.seed, d.seed);
        }
    }

    #[test]
    fn scale_presets_taper_with_n() {
        let p256 = SuiteParams::scale_preset(256);
        let p1024 = SuiteParams::scale_preset(1024);
        let p4096 = SuiteParams::scale_preset(4096);
        for p in [&p256, &p1024, &p4096] {
            assert_eq!(p.m, 4 * p.n, "presets keep the density ratio");
        }
        assert!(p256.events >= p1024.events && p1024.events >= p4096.events);
        assert_eq!(p4096.verify_every, 0, "largest preset checkpoints the final event only");
    }

    #[test]
    fn suite_is_deterministic_across_runs() {
        let a = run_churn_suite(&tiny()).unwrap();
        let b = run_churn_suite(&tiny()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed must give byte-identical JSON"
        );
        let c = run_churn_suite(&SuiteParams { seed: 99, ..tiny() }).unwrap();
        assert_ne!(a.fingerprint, c.fingerprint);
    }
}
