//! Ready-made scenario suites: generate the standard battery, replay it
//! under every applicable policy, and seal a comparison report.

use rand::rngs::StdRng;
use rand::SeedableRng;

use kkt_congest::Scheduler;
use kkt_core::TreeKind;
use kkt_graphs::{generators, Graph};

use crate::replay::{MaintenancePolicy, ReplayConfig, ReplayError, ReplayHarness};
use crate::report::{scheduler_label, ChurnSuiteReport, ScenarioComparison};
use crate::scenarios::standard_suite;

/// A rung of the dynamic density ladder: the target edge budget expressed
/// as a ratio `m/n`. The interesting sweep axis of the o(m) claims — sparse
/// rungs are where rebuild baselines are cheap (`Θ(m)` with small `m`),
/// superlinear rungs (`m/n ∈ {n/8, n/2}`) are where they pay and impromptu
/// repair's `Õ(n)` does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Density {
    /// Constant ratio: `m = ratio · n` (clamped to the complete graph).
    Ratio(usize),
    /// Superlinear: `m = n²/8` — a quarter of the complete graph.
    NOver8,
    /// Superlinear: `m = n²/2`, which clamps to the complete graph `K_n`
    /// (`n(n-1)/2` edges) — the densest rung.
    NOver2,
}

impl Density {
    /// The standard E13 ladder: `m/n ∈ {2, 4, 8, 16, n/8, n/2}`.
    pub const LADDER: [Density; 6] = [
        Density::Ratio(2),
        Density::Ratio(4),
        Density::Ratio(8),
        Density::Ratio(16),
        Density::NOver8,
        Density::NOver2,
    ];

    /// The target live-edge count at network size `n`, clamped to
    /// `[n - 1, n(n-1)/2]` so every rung is connectable and simple.
    pub fn target_edges(self, n: usize) -> usize {
        let max_edges = if n < 2 { 0 } else { n * (n - 1) / 2 };
        let raw = match self {
            Density::Ratio(ratio) => ratio * n,
            Density::NOver8 => n * n / 8,
            Density::NOver2 => n * n / 2,
        };
        raw.clamp(n.saturating_sub(1), max_edges.max(n.saturating_sub(1)))
    }

    /// Stable report/table label for the rung (`"2"`, …, `"n/8"`, `"n/2"`).
    pub fn label(self) -> String {
        match self {
            Density::Ratio(ratio) => ratio.to_string(),
            Density::NOver8 => "n/8".to_string(),
            Density::NOver2 => "n/2".to_string(),
        }
    }
}

/// Parameters of a churn-suite run.
#[derive(Debug, Clone, Copy)]
pub struct SuiteParams {
    /// Nodes of the base graph.
    pub n: usize,
    /// Target live edges of the base graph.
    pub m: usize,
    /// Maximum raw weight.
    pub max_weight: u64,
    /// Top-level events per scenario.
    pub events: usize,
    /// Master seed (graph, traces, protocol coins, delivery delays).
    pub seed: u64,
    /// Which structure to maintain.
    pub kind: TreeKind,
    /// Delivery model for repairs (and scheduler-tolerant rebuilds).
    pub scheduler: Scheduler,
    /// Oracle checkpoint interval (`0` = final event only).
    pub verify_every: usize,
}

impl Default for SuiteParams {
    fn default() -> Self {
        Self::with_n(48)
    }
}

impl SuiteParams {
    /// Default-shaped parameters for an arbitrary `n`: the target edge count
    /// is *derived* from `n` at the default density ratio `m/n = 4` (the
    /// old `Default` hard-coded `m = 4 * 48` as a literal, so overriding `n`
    /// silently kept a 48-node edge budget).
    pub fn with_n(n: usize) -> Self {
        SuiteParams {
            n,
            m: 4 * n,
            max_weight: 1_000,
            events: 16,
            seed: 0xC0DE,
            kind: TreeKind::Mst,
            scheduler: Scheduler::RandomAsync { max_delay: 8 },
            verify_every: 4,
        }
    }

    /// The `KKT_SCALE=large` presets of the scale sweeps (exp9, exp11),
    /// tuned for n ∈ {256, 1024, 4096, 16384, 65536}: density stays at the
    /// default ratio while the event budget and checkpoint interval taper
    /// with `n`, so a single scenario stays inside a CI-sized wall-clock at
    /// n = 1024 and above. The n ≥ 16384 rungs shrink the event budget
    /// further and keep the final-event-only checkpointing — at that size a
    /// single oracle verification is already Θ(m) work.
    pub fn scale_preset(n: usize) -> Self {
        let (events, verify_every) = if n >= 65536 {
            (4, 0)
        } else if n >= 16384 {
            (6, 0)
        } else if n >= 4096 {
            (8, 0) // final-event checkpoint only
        } else if n >= 1024 {
            (12, 6)
        } else {
            (16, 4)
        };
        SuiteParams { events, verify_every, ..Self::with_n(n) }
    }

    /// The density axis of the dynamic sweeps (E13): `scale_preset`-shaped
    /// parameters at network size `n` with the edge budget set by the
    /// [`Density`] rung instead of the default `m/n = 4`. Event budget and
    /// checkpoint interval taper with `n` exactly as in
    /// [`SuiteParams::scale_preset`], so a rung's cost differences come from
    /// density alone.
    pub fn density_preset(n: usize, density: Density) -> Self {
        SuiteParams { m: density.target_edges(n), ..Self::scale_preset(n) }
    }

    /// The same parameters replayed under a different master seed — the
    /// per-cell plumbing of the seed-fleet runner, where every (rung,
    /// density) preset is instantiated once per mixed seed. A builder method
    /// (rather than struct-update syntax at each call site) so fleet cells
    /// cannot accidentally override anything but the seed.
    pub fn with_seed(self, seed: u64) -> Self {
        SuiteParams { seed, ..self }
    }

    /// The deterministic base graph of the run.
    ///
    /// Sparse budgets use the rejection-sampling builder
    /// ([`generators::connected_with_edges`]); budgets at or above a quarter
    /// of the complete graph switch to the enumerating dense builder
    /// ([`generators::connected_dense`]), whose work stays bounded all the
    /// way to `K_n` where rejection degenerates into a coupon collector.
    /// The switch keeps every *standard* pre-density-ladder preset on the
    /// historical path byte-for-byte (`with_n`/`scale_preset` sit at
    /// `m/n = 4`, below the threshold for every preset size n ≥ 48); ad-hoc
    /// configs at n ≤ 33 with that ratio land above it and route dense.
    pub fn base_graph(&self) -> Graph {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xBA5E_6AF0);
        let max_edges = if self.n < 2 { 0 } else { self.n * (self.n - 1) / 2 };
        if self.m * 4 >= max_edges.max(1) {
            generators::connected_dense(self.n, self.m, self.max_weight, &mut rng)
        } else {
            generators::connected_with_edges(self.n, self.m, self.max_weight, &mut rng)
        }
    }
}

/// Generates the standard scenario battery over the params' base graph and
/// replays every scenario under every policy applicable to `params.kind`.
///
/// # Errors
///
/// Propagates the first replay failure (including oracle mismatches — a
/// suite report is only produced when every checkpoint verified).
pub fn run_churn_suite(params: &SuiteParams) -> Result<ChurnSuiteReport, ReplayError> {
    let base = params.base_graph();
    let harness = ReplayHarness::new(ReplayConfig {
        kind: params.kind,
        scheduler: params.scheduler,
        verify_every: params.verify_every,
        seed: params.seed,
        ..ReplayConfig::default()
    });
    let mut scenarios = Vec::new();
    for scenario in standard_suite(params.max_weight) {
        let workload = scenario.generate(&base, params.events, params.seed);
        let stats = workload.validate(&base).map_err(ReplayError::InvalidTrace)?;
        let mut reports = Vec::new();
        for policy in MaintenancePolicy::all_for(params.kind) {
            reports.push(harness.replay(&base, &workload, policy)?);
        }
        scenarios.push(ScenarioComparison {
            scenario: workload.scenario.clone(),
            workload_fingerprint: workload.fingerprint(),
            stats,
            reports,
        });
    }
    let mut report = ChurnSuiteReport {
        n: base.node_count(),
        m: base.edge_count(),
        events_per_scenario: params.events,
        m_over_n: crate::report::m_over_n(&base),
        seed: params.seed,
        tree_kind: match params.kind {
            TreeKind::Mst => "mst".to_string(),
            TreeKind::St => "st".to_string(),
        },
        scheduler: scheduler_label(params.scheduler),
        scenarios,
        fingerprint: String::new(),
    };
    report.seal();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SuiteParams {
        SuiteParams { n: 16, m: 40, events: 4, verify_every: 2, ..SuiteParams::default() }
    }

    #[test]
    fn suite_runs_and_seals() {
        let report = run_churn_suite(&tiny()).unwrap();
        assert_eq!(report.scenarios.len(), 5);
        for s in &report.scenarios {
            assert_eq!(s.reports.len(), 4, "{}", s.scenario);
            for r in &s.reports {
                assert!(r.checkpoints_verified > 0);
            }
        }
        assert_eq!(report.fingerprint.len(), 16);
    }

    #[test]
    fn with_n_keeps_the_density_ratio() {
        let d = SuiteParams::default();
        assert_eq!(d.n, 48);
        assert_eq!(d.m, 4 * d.n, "default m is derived from n");
        for n in [16usize, 48, 256, 1024, 4096] {
            let p = SuiteParams::with_n(n);
            assert_eq!(p.n, n);
            assert_eq!(p.m, 4 * n, "with_n must keep m/n = 4");
            assert_eq!(p.events, d.events);
            assert_eq!(p.verify_every, d.verify_every);
            assert_eq!(p.seed, d.seed);
        }
    }

    #[test]
    fn scale_presets_taper_with_n() {
        let rungs: Vec<SuiteParams> =
            [256, 1024, 4096, 16384, 65536].map(SuiteParams::scale_preset).into();
        for p in &rungs {
            assert_eq!(p.m, 4 * p.n, "presets keep the density ratio");
        }
        assert!(rungs.windows(2).all(|w| w[0].events >= w[1].events), "event budgets taper");
        for p in &rungs[2..] {
            assert_eq!(p.verify_every, 0, "n ≥ 4096 checkpoints the final event only");
        }
        // The pre-PR-9 rungs are frozen: the taper extension must not move
        // any historical preset (byte-compat of exp9/exp11 JSON).
        assert_eq!((rungs[0].events, rungs[0].verify_every), (16, 4));
        assert_eq!((rungs[1].events, rungs[1].verify_every), (12, 6));
        assert_eq!((rungs[2].events, rungs[2].verify_every), (8, 0));
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let p = SuiteParams::density_preset(64, Density::Ratio(8));
        let q = p.with_seed(0xABCD);
        assert_eq!(q.seed, 0xABCD);
        assert_eq!((q.n, q.m, q.events, q.verify_every), (p.n, p.m, p.events, p.verify_every));
        assert_eq!(q.max_weight, p.max_weight);
        // Different seeds must actually produce different base graphs (the
        // whole point of a seed fleet) while keeping the same shape targets.
        let (a, b) = (p.base_graph(), q.base_graph());
        assert_eq!(a.node_count(), b.node_count());
        let edges = |g: &Graph| {
            g.live_edges()
                .map(|id| {
                    let e = g.edge(id);
                    (e.u, e.v, e.weight)
                })
                .collect::<Vec<_>>()
        };
        assert_ne!(edges(&a), edges(&b), "distinct seeds should sample distinct graphs");
    }

    #[test]
    fn density_ladder_targets_and_labels() {
        let labels: Vec<String> = Density::LADDER.iter().map(|d| d.label()).collect();
        assert_eq!(labels, ["2", "4", "8", "16", "n/8", "n/2"]);
        let n = 64;
        let max_edges = n * (n - 1) / 2;
        assert_eq!(Density::Ratio(2).target_edges(n), 2 * n);
        assert_eq!(Density::Ratio(16).target_edges(n), 16 * n);
        assert_eq!(Density::NOver8.target_edges(n), n * n / 8);
        assert_eq!(Density::NOver2.target_edges(n), max_edges, "n/2 clamps to complete");
        // Targets are monotone along the ladder once n/8 clears the constant
        // rungs (n ≥ 128; smaller grids interleave, which is fine — the
        // ladder is a set of rungs, not an ordered sweep).
        let targets: Vec<usize> = Density::LADDER.iter().map(|d| d.target_edges(256)).collect();
        assert!(targets.windows(2).all(|w| w[0] < w[1]), "{targets:?}");
        // Tiny networks clamp sanely in both directions.
        assert_eq!(Density::Ratio(16).target_edges(4), 6, "clamped to K_4");
        assert_eq!(Density::Ratio(2).target_edges(2), 1);
    }

    #[test]
    fn density_preset_wires_the_ladder_into_suite_params() {
        for n in [64usize, 256] {
            for &density in &Density::LADDER {
                let p = SuiteParams::density_preset(n, density);
                assert_eq!(p.n, n);
                assert_eq!(p.m, density.target_edges(n), "{}", density.label());
                // Everything but the edge budget matches the scale preset.
                let scale = SuiteParams::scale_preset(n);
                assert_eq!(p.events, scale.events);
                assert_eq!(p.verify_every, scale.verify_every);
                assert_eq!(p.seed, scale.seed);
            }
        }
        // density_preset at the default rung is exactly the scale preset.
        let p = SuiteParams::density_preset(256, Density::Ratio(4));
        assert_eq!(p.m, SuiteParams::scale_preset(256).m);
    }

    #[test]
    fn base_graph_hits_every_density_rung_exactly() {
        // The dense builder takes over where rejection sampling would
        // degenerate; every rung must land on its exact target, connected.
        for n in [32usize, 64] {
            for &density in &Density::LADDER {
                let p = SuiteParams { seed: 0xD0, ..SuiteParams::density_preset(n, density) };
                let g = p.base_graph();
                assert_eq!(g.node_count(), n);
                assert!(g.is_connected(), "n={n} density={}", density.label());
                let target = density.target_edges(n);
                // The rejection path may undershoot slightly; the dense path
                // (superlinear rungs) is exact.
                assert!(g.edge_count() <= target);
                assert!(
                    g.edge_count() * 10 >= target * 9,
                    "n={n} density={}: got {} of {target}",
                    density.label(),
                    g.edge_count()
                );
                if matches!(density, Density::NOver8 | Density::NOver2) {
                    assert_eq!(g.edge_count(), target, "dense builder is exact");
                }
            }
        }
    }

    #[test]
    fn suite_runs_on_a_dense_rung() {
        // The whole battery replays and verifies on a dense base graph (the
        // regime none of the pre-E13 suites ever exercised).
        let params = SuiteParams {
            events: 4,
            verify_every: 2,
            ..SuiteParams::density_preset(16, Density::NOver2)
        };
        let report = run_churn_suite(&params).unwrap();
        assert_eq!(report.m, 16 * 15 / 2, "the n/2 rung is the complete graph");
        assert!((report.m_over_n - 7.5).abs() < 1e-12);
        assert_eq!(report.scenarios.len(), 5);
        for s in &report.scenarios {
            for r in &s.reports {
                assert!(r.checkpoints_verified > 0, "{}/{}", s.scenario, r.policy);
            }
        }
    }

    #[test]
    fn suite_is_deterministic_across_runs() {
        let a = run_churn_suite(&tiny()).unwrap();
        let b = run_churn_suite(&tiny()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed must give byte-identical JSON"
        );
        let c = run_churn_suite(&SuiteParams { seed: 99, ..tiny() }).unwrap();
        assert_ne!(a.fingerprint, c.fingerprint);
    }
}
