//! Composable scenario generators.
//!
//! Every generator is a [`Scenario`]: a pure function from (base graph,
//! event budget, seed) to a [`Workload`]. Generators maintain a *shadow*
//! copy of the evolving graph while emitting events, so every emitted event
//! is applicable in order — [`Workload::validate`] re-checks this — and the
//! connectivity regime is controlled deliberately:
//!
//! * [`PoissonChurn`], [`AdversarialTreeCut`], [`WeightDrift`] and
//!   [`MixedPhases`] keep the network connected (deletions avoid bridges),
//!   the regime of the paper's repair theorems;
//! * [`PartitionHeal`] *deliberately* disconnects the network in bursts and
//!   heals it again, exercising the `Bridge` / `MergedFragments` repair
//!   paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kkt_graphs::{kruskal, EdgeId, Graph, NodeId, Weight};

use crate::event::WorkloadEvent;
use crate::fingerprint::fnv1a64;
use crate::workload::Workload;

/// A deterministic trace generator.
pub trait Scenario {
    /// Stable identifier (also the default workload name); parameters are
    /// baked in so two differently-tuned instances have different ids.
    fn id(&self) -> String;

    /// Generates a trace of (about) `events` top-level events over `base`.
    /// Same inputs ⇒ identical output, including the fingerprint.
    fn generate(&self, base: &Graph, events: usize, seed: u64) -> Workload;
}

/// Derives the generator's RNG so that different scenarios with the same
/// seed still draw independent streams.
fn scenario_rng(id: &str, seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ fnv1a64(id.as_bytes()))
}

fn finish(id: String, seed: u64, base: &Graph, events: Vec<WorkloadEvent>) -> Workload {
    Workload { name: id.clone(), scenario: id, seed, n: base.node_count(), events }
}

// ---------------------------------------------------------------------------
// Shadow-graph helpers
// ---------------------------------------------------------------------------

fn random_weight(max_weight: Weight, rng: &mut StdRng) -> Weight {
    if max_weight <= 1 {
        1
    } else {
        rng.gen_range(1..=max_weight)
    }
}

/// A uniformly random absent pair, or `None` if the graph is complete.
///
/// Sparse graphs sample by rejection (the historical path — the same RNG
/// draws, so pre-density-ladder traces are unchanged); once the absent pool
/// shrinks below 1/8 of all pairs the rejection hit rate collapses, so dense
/// graphs pick a uniform index into the *enumerated* absent pool instead.
/// The rejection loop is also capped — after 512 misses (probability
/// ≤ (7/8)^512 whenever the pool guard admits the loop) it falls through to
/// the same enumeration — so the sampler bails deterministically instead of
/// spinning, whatever the caller hands it.
fn random_absent_pair(g: &Graph, rng: &mut StdRng) -> Option<(NodeId, NodeId)> {
    let n = g.node_count();
    let max_pairs = if n < 2 { 0 } else { n * (n - 1) / 2 };
    let absent = max_pairs.saturating_sub(g.edge_count());
    if absent == 0 {
        return None;
    }
    if absent * 8 >= max_pairs {
        for _ in 0..512 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && g.edge_between(u, v).is_none() {
                return Some((u, v));
            }
        }
    }
    // Deterministic fallback: the k-th absent pair in lexicographic order.
    let mut k = rng.gen_range(0..absent);
    for u in 0..n {
        for v in (u + 1)..n {
            if g.edge_between(u, v).is_none() {
                if k == 0 {
                    return Some((u, v));
                }
                k -= 1;
            }
        }
    }
    unreachable!("the absent pool was counted above")
}

/// Bridge flags for all live edges (indexed by `EdgeId`), computed with one
/// iterative Tarjan low-link DFS per component in `O(n + m)` — generators
/// call this once per emitted deletion, so a per-candidate connectivity
/// probe would make trace generation quadratic in `m`.
fn bridge_flags(g: &Graph) -> Vec<bool> {
    let n = g.node_count();
    let cap = g.live_edges().map(|e| e.0 + 1).max().unwrap_or(0);
    let mut is_bridge = vec![false; cap];
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut timer = 0usize;
    for start in 0..n {
        if disc[start] != usize::MAX {
            continue;
        }
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        // Stack frame: (node, edge into it, incident edges, next index).
        let mut stack: Vec<(NodeId, Option<EdgeId>, Vec<EdgeId>, usize)> =
            vec![(start, None, g.incident(start).collect(), 0)];
        while let Some(frame) = stack.last_mut() {
            let (x, parent_edge) = (frame.0, frame.1);
            if frame.3 < frame.2.len() {
                let e = frame.2[frame.3];
                frame.3 += 1;
                // The graph is simple, so skipping the one parent edge by id
                // cannot skip a parallel edge.
                if Some(e) == parent_edge {
                    continue;
                }
                let y = g.edge(e).other(x);
                if disc[y] == usize::MAX {
                    disc[y] = timer;
                    low[y] = timer;
                    timer += 1;
                    stack.push((y, Some(e), g.incident(y).collect(), 0));
                } else {
                    low[x] = low[x].min(disc[y]);
                }
            } else {
                stack.pop();
                if let Some(parent) = stack.last_mut() {
                    let px = parent.0;
                    low[px] = low[px].min(low[x]);
                    if let Some(pe) = parent_edge {
                        if low[x] > disc[px] {
                            is_bridge[pe.0] = true;
                        }
                    }
                }
            }
        }
    }
    is_bridge
}

/// A random deletable (non-bridge) edge, optionally restricted to the
/// current minimum spanning forest.
fn random_deletable_edge(g: &Graph, tree_only: bool, rng: &mut StdRng) -> Option<EdgeId> {
    let tree = if tree_only { Some(kruskal(g)) } else { None };
    let bridges = bridge_flags(g);
    let candidates: Vec<EdgeId> = g
        .live_edges()
        .filter(|&e| !bridges[e.0])
        .filter(|&e| tree.as_ref().is_none_or(|t| t.contains(e)))
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

/// A deletion event for a random deletable edge (shared by the churn and
/// adversarial generators so the sampling discipline cannot drift apart).
fn random_delete_event(g: &Graph, tree_only: bool, rng: &mut StdRng) -> Option<WorkloadEvent> {
    random_deletable_edge(g, tree_only, rng).map(|e| {
        let edge = *g.edge(e);
        WorkloadEvent::DeleteEdge { u: edge.u, v: edge.v }
    })
}

/// A connected region grown by BFS from a random start, of the given size.
fn random_region(g: &Graph, size: usize, rng: &mut StdRng) -> Vec<bool> {
    let n = g.node_count();
    let mut side = vec![false; n];
    let start = rng.gen_range(0..n);
    let mut frontier = vec![start];
    side[start] = true;
    let mut grown = 1;
    while grown < size {
        let Some(&x) = frontier.last() else { break };
        let next = g.incident(x).map(|e| g.edge(e).other(x)).find(|&y| !side[y]);
        match next {
            Some(y) => {
                side[y] = true;
                grown += 1;
                frontier.push(y);
            }
            None => {
                frontier.pop();
            }
        }
    }
    side
}

// ---------------------------------------------------------------------------
// 1. Poisson churn
// ---------------------------------------------------------------------------

/// Memoryless background churn: each event is independently a deletion
/// (probability [`PoissonChurn::delete_fraction`]) of a uniformly random
/// non-bridge edge, or an insertion of a uniformly random absent edge — the
/// discrete-time thinning of two independent Poisson processes. The network
/// stays connected throughout; density performs a bounded random walk.
#[derive(Debug, Clone, Copy)]
pub struct PoissonChurn {
    /// Probability that an event is a deletion (the rest insert).
    pub delete_fraction: f64,
    /// Maximum raw weight for inserted edges.
    pub max_weight: Weight,
}

impl Default for PoissonChurn {
    fn default() -> Self {
        PoissonChurn { delete_fraction: 0.5, max_weight: 1_000 }
    }
}

impl Scenario for PoissonChurn {
    fn id(&self) -> String {
        format!("poisson_churn({:.2})", self.delete_fraction)
    }

    fn generate(&self, base: &Graph, events: usize, seed: u64) -> Workload {
        let id = self.id();
        let mut rng = scenario_rng(&id, seed);
        let mut shadow = base.clone();
        let mut out = Vec::with_capacity(events);
        for _ in 0..events {
            let delete = rng.gen_bool(self.delete_fraction);
            let event = if delete { random_delete_event(&shadow, false, &mut rng) } else { None };
            // A failed draw (tree-only graph has no deletable edge; complete
            // graph has no absent pair) falls through to the other kind.
            let event = event
                .or_else(|| {
                    random_absent_pair(&shadow, &mut rng).map(|(u, v)| WorkloadEvent::InsertEdge {
                        u,
                        v,
                        weight: random_weight(self.max_weight, &mut rng),
                    })
                })
                .or_else(|| random_delete_event(&shadow, false, &mut rng));
            let Some(event) = event else { break };
            event.apply_to_graph(&mut shadow).expect("generator emits applicable events");
            out.push(event);
        }
        finish(id, seed, base, out)
    }
}

// ---------------------------------------------------------------------------
// 2. Adversarial tree-edge targeting
// ---------------------------------------------------------------------------

/// An adversary that always severs the *current minimum spanning forest*:
/// every deletion targets a (non-bridge) tree edge, forcing a full
/// `FindMin`/`FindAny` repair each time — the worst case the repair
/// theorems price. Every third event re-inserts a random absent edge so the
/// replacement pool never dries up.
#[derive(Debug, Clone, Copy)]
pub struct AdversarialTreeCut {
    /// Maximum raw weight for replenishing insertions.
    pub max_weight: Weight,
}

impl Default for AdversarialTreeCut {
    fn default() -> Self {
        AdversarialTreeCut { max_weight: 1_000 }
    }
}

impl Scenario for AdversarialTreeCut {
    fn id(&self) -> String {
        "adversarial_tree_cut".to_string()
    }

    fn generate(&self, base: &Graph, events: usize, seed: u64) -> Workload {
        let id = self.id();
        let mut rng = scenario_rng(&id, seed);
        let mut shadow = base.clone();
        let mut out = Vec::with_capacity(events);
        for step in 0..events {
            let replenish = step % 3 == 2;
            // Each phase falls back on the other at the density extremes, so
            // the adversary stays well-defined on the whole ladder: on the
            // complete graph there is no absent pair to replenish (cut a tree
            // edge instead); on the tree-only rung every tree edge is a
            // bridge (replenish instead). A connected graph with any
            // non-tree edge always has a non-bridge tree edge, so the
            // fallback never fires — and the trace never changes — on the
            // historical sparse presets.
            let mut event = if replenish {
                random_absent_pair(&shadow, &mut rng).map(|(u, v)| WorkloadEvent::InsertEdge {
                    u,
                    v,
                    weight: random_weight(self.max_weight, &mut rng),
                })
            } else {
                random_delete_event(&shadow, true, &mut rng)
            };
            if event.is_none() {
                event = if replenish {
                    random_delete_event(&shadow, true, &mut rng)
                } else {
                    random_absent_pair(&shadow, &mut rng).map(|(u, v)| WorkloadEvent::InsertEdge {
                        u,
                        v,
                        weight: random_weight(self.max_weight, &mut rng),
                    })
                };
            }
            let Some(event) = event else { break };
            event.apply_to_graph(&mut shadow).expect("generator emits applicable events");
            out.push(event);
        }
        finish(id, seed, base, out)
    }
}

// ---------------------------------------------------------------------------
// 3. Partition and heal
// ---------------------------------------------------------------------------

/// Correlated failure bursts: a connected region of roughly a quarter of the
/// network is cut off by deleting *all* of its boundary edges in one burst
/// (the network genuinely partitions — repairs must return `Bridge`), then
/// the same links come back in a healing burst with fresh weights
/// (`MergedFragments`). Repeats until the event budget is spent.
#[derive(Debug, Clone, Copy)]
pub struct PartitionHeal {
    /// Maximum raw weight for healed edges.
    pub max_weight: Weight,
}

impl Default for PartitionHeal {
    fn default() -> Self {
        PartitionHeal { max_weight: 1_000 }
    }
}

impl Scenario for PartitionHeal {
    fn id(&self) -> String {
        "partition_heal".to_string()
    }

    fn generate(&self, base: &Graph, events: usize, seed: u64) -> Workload {
        let id = self.id();
        let mut rng = scenario_rng(&id, seed);
        let mut shadow = base.clone();
        let mut out = Vec::with_capacity(events);
        while out.len() + 2 <= events {
            let n = shadow.node_count();
            let m = shadow.edge_count();
            // The burst must respect density: cutting off a quarter of a
            // *dense* network severs Θ(m) boundary edges, so the burst size
            // (and the repair bill it prices) would grow with m instead of
            // staying the O(n)-edges correlated failure this scenario
            // models. Keep the historical n/4 region through the sparse band
            // (m ≤ 5n — covers the m/n = 4 presets and their churn drift,
            // leaving every pre-ladder trace byte-identical) and shrink the
            // region inversely with average degree above it, holding the
            // expected boundary at O(n) edges on every density rung.
            let avg_degree = (2 * m).div_ceil(n.max(1)).max(1);
            let quarter = (n / 4).max(2);
            let region_size = if 2 * m <= 10 * n {
                quarter
            } else {
                (quarter * 8 / avg_degree).clamp(2, quarter)
            };
            let side = random_region(&shadow, region_size, &mut rng);
            let cut = shadow.cut(&side);
            if cut.is_empty() {
                break;
            }
            let endpoints: Vec<(NodeId, NodeId)> = cut
                .iter()
                .map(|&e| {
                    let edge = shadow.edge(e);
                    (edge.u, edge.v)
                })
                .collect();
            let partition = WorkloadEvent::Burst {
                events: endpoints
                    .iter()
                    .map(|&(u, v)| WorkloadEvent::DeleteEdge { u, v })
                    .collect(),
            };
            let heal = WorkloadEvent::Burst {
                events: endpoints
                    .iter()
                    .map(|&(u, v)| WorkloadEvent::InsertEdge {
                        u,
                        v,
                        weight: random_weight(self.max_weight, &mut rng),
                    })
                    .collect(),
            };
            partition.apply_to_graph(&mut shadow).expect("cut edges are live");
            heal.apply_to_graph(&mut shadow).expect("healed edges were just deleted");
            out.push(partition);
            out.push(heal);
        }
        finish(id, seed, base, out)
    }
}

// ---------------------------------------------------------------------------
// 3b. Multi-edge simultaneous failures
// ---------------------------------------------------------------------------

/// Simultaneous failures of `k` *independent* tree edges per burst: unlike
/// [`PartitionHeal`]'s geographic cuts, the severed edges are spread across
/// the current minimum spanning forest (pairwise non-adjacent where
/// possible), and their simultaneous removal keeps the network connected —
/// every cut has a replacement, so the burst measures pure repair work. Each
/// failure burst is followed by a replenishment burst inserting `k` fresh
/// random edges, keeping density stationary over long traces.
///
/// This is the workload where batching either wins or dies: a sequential
/// replay repairs the `k` cuts one at a time (each search walking a fragment
/// that is almost the whole tree), while a batched replay mends the whole
/// fragment partition in one pipelined pass.
#[derive(Debug, Clone, Copy)]
pub struct MultiEdgeCuts {
    /// Tree edges severed per burst (`k`).
    pub burst_size: usize,
    /// Maximum raw weight for replenishing insertions.
    pub max_weight: Weight,
}

impl Default for MultiEdgeCuts {
    fn default() -> Self {
        MultiEdgeCuts { burst_size: 4, max_weight: 1_000 }
    }
}

impl MultiEdgeCuts {
    /// Up to `burst_size` current-tree edges whose *joint* removal keeps the
    /// graph connected, preferring pairwise vertex-disjoint picks.
    fn pick_burst(&self, g: &Graph, rng: &mut StdRng) -> Vec<(NodeId, NodeId)> {
        let tree = kruskal(g);
        let mut candidates: Vec<EdgeId> = g.live_edges().filter(|&e| tree.contains(e)).collect();
        // Deterministic shuffle: the candidate order is a pure function of
        // the scenario RNG state.
        for i in (1..candidates.len()).rev() {
            candidates.swap(i, rng.gen_range(0..=i));
        }
        let mut probe = g.clone();
        let mut touched = vec![false; g.node_count()];
        let mut picked = Vec::new();
        for disjoint_only in [true, false] {
            for &e in &candidates {
                if picked.len() == self.burst_size {
                    return picked;
                }
                let edge = *g.edge(e);
                if probe.edge_between(edge.u, edge.v).is_none() {
                    continue; // already severed by this burst
                }
                if disjoint_only && (touched[edge.u] || touched[edge.v]) {
                    continue;
                }
                probe.remove_edge(edge.u, edge.v);
                if probe.component_count() > 1 {
                    probe.add_edge(edge.u, edge.v, edge.weight);
                    continue;
                }
                touched[edge.u] = true;
                touched[edge.v] = true;
                picked.push((edge.u, edge.v));
            }
        }
        picked
    }
}

impl Scenario for MultiEdgeCuts {
    fn id(&self) -> String {
        format!("multi_edge_cuts(k={})", self.burst_size)
    }

    fn generate(&self, base: &Graph, events: usize, seed: u64) -> Workload {
        let id = self.id();
        let mut rng = scenario_rng(&id, seed);
        let mut shadow = base.clone();
        let mut out = Vec::with_capacity(events);
        while out.len() + 2 <= events {
            let burst = self.pick_burst(&shadow, &mut rng);
            if burst.is_empty() {
                break;
            }
            let failures = WorkloadEvent::Burst {
                events: burst.iter().map(|&(u, v)| WorkloadEvent::DeleteEdge { u, v }).collect(),
            };
            failures.apply_to_graph(&mut shadow).expect("picked edges are live");
            let mut replenish = Vec::new();
            for _ in 0..burst.len() {
                let Some((u, v)) = random_absent_pair(&shadow, &mut rng) else { break };
                let event = WorkloadEvent::InsertEdge {
                    u,
                    v,
                    weight: random_weight(self.max_weight, &mut rng),
                };
                event.apply_to_graph(&mut shadow).expect("absent pair is insertable");
                replenish.push(event);
            }
            out.push(failures);
            if !replenish.is_empty() {
                out.push(WorkloadEvent::Burst { events: replenish });
            }
        }
        finish(id, seed, base, out)
    }
}

// ---------------------------------------------------------------------------
// 4. Weight drift on hot edges
// ---------------------------------------------------------------------------

/// Weight-only dynamics: a "hot" subset of edges (biased towards the current
/// tree, where changes actually matter) performs a multiplicative random
/// walk. Exercises `increase_weight_mst` / `decrease_weight_mst` — tree
/// re-justifications and swaps — without any topology change.
#[derive(Debug, Clone, Copy)]
pub struct WeightDrift {
    /// Fraction of edges in the hot set (clamped to at least one edge).
    pub hot_fraction: f64,
    /// Per-event multiplicative step: weights move by a factor in
    /// `[1/(1+drift), 1+drift]`.
    pub drift: f64,
    /// Weights are clamped to `[1, max_weight]`.
    pub max_weight: Weight,
}

impl Default for WeightDrift {
    fn default() -> Self {
        WeightDrift { hot_fraction: 0.2, drift: 0.8, max_weight: 1_000 }
    }
}

impl Scenario for WeightDrift {
    fn id(&self) -> String {
        format!("weight_drift({:.2})", self.hot_fraction)
    }

    fn generate(&self, base: &Graph, events: usize, seed: u64) -> Workload {
        let id = self.id();
        let mut rng = scenario_rng(&id, seed);
        let mut shadow = base.clone();
        if shadow.edge_count() == 0 {
            // An edgeless network has nothing to drift.
            return finish(id, seed, base, Vec::new());
        }
        // Hot set: all tree edges first, then non-tree edges, up to the
        // requested fraction of m.
        let tree = kruskal(&shadow);
        let mut hot: Vec<EdgeId> = shadow.live_edges().filter(|&e| tree.contains(e)).collect();
        let non_tree: Vec<EdgeId> = shadow.live_edges().filter(|&e| !tree.contains(e)).collect();
        let target = ((shadow.edge_count() as f64 * self.hot_fraction) as usize).max(1);
        for &e in &non_tree {
            if hot.len() >= target {
                break;
            }
            hot.push(e);
        }
        hot.truncate(target.max(1));
        let mut out = Vec::with_capacity(events);
        for _ in 0..events {
            let e = hot[rng.gen_range(0..hot.len())];
            let edge = *shadow.edge(e);
            let factor = 1.0 + rng.gen_range(0.0..self.drift.max(0.01));
            let up = rng.gen_bool(0.5);
            let new_weight = if up {
                ((edge.weight as f64 * factor) as Weight).clamp(1, self.max_weight)
            } else {
                ((edge.weight as f64 / factor) as Weight).clamp(1, self.max_weight)
            };
            let event = WorkloadEvent::ChangeWeight { u: edge.u, v: edge.v, weight: new_weight };
            event.apply_to_graph(&mut shadow).expect("hot edges stay live");
            out.push(event);
        }
        finish(id, seed, base, out)
    }
}

// ---------------------------------------------------------------------------
// 5. Mixed phases
// ---------------------------------------------------------------------------

/// Sequential composition: each phase's generator runs against the graph as
/// the previous phases left it, modelling e.g. *steady churn → partition →
/// heal → weight turbulence* lifecycles. This is the "composable" in
/// composable scenario generators — any [`Scenario`] can be a phase.
pub struct MixedPhases {
    /// The phases: a scenario and its share of the event budget.
    pub phases: Vec<(Box<dyn Scenario>, usize)>,
}

impl MixedPhases {
    /// A ready-made lifecycle: churn, then partition-and-heal, then weight
    /// drift, splitting the event budget 2:1:1.
    pub fn standard(max_weight: Weight) -> Self {
        MixedPhases {
            phases: vec![
                (Box::new(PoissonChurn { delete_fraction: 0.5, max_weight }), 2),
                (Box::new(PartitionHeal { max_weight }), 1),
                (Box::new(WeightDrift { max_weight, ..WeightDrift::default() }), 1),
            ],
        }
    }
}

impl Scenario for MixedPhases {
    fn id(&self) -> String {
        let parts: Vec<String> = self.phases.iter().map(|(s, _)| s.id()).collect();
        format!("mixed[{}]", parts.join(";"))
    }

    fn generate(&self, base: &Graph, events: usize, seed: u64) -> Workload {
        let id = self.id();
        let total_shares: usize = self.phases.iter().map(|(_, share)| *share).sum();
        let mut shadow = base.clone();
        let mut out = Vec::with_capacity(events);
        for (i, (scenario, share)) in self.phases.iter().enumerate() {
            let budget = (events * share).checked_div(total_shares).unwrap_or(0);
            let phase = scenario.generate(&shadow, budget, seed.wrapping_add(i as u64));
            for event in &phase.events {
                event.apply_to_graph(&mut shadow).expect("phase generators emit applicable events");
            }
            out.extend(phase.events);
        }
        let mut w = finish(id, seed, base, out);
        w.name = "mixed_lifecycle".to_string();
        w
    }
}

/// The standard scenario battery the experiment suite sweeps: one instance
/// of each generator family with default tuning.
pub fn standard_suite(max_weight: Weight) -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(PoissonChurn { delete_fraction: 0.5, max_weight }),
        Box::new(AdversarialTreeCut { max_weight }),
        Box::new(PartitionHeal { max_weight }),
        Box::new(WeightDrift { max_weight, ..WeightDrift::default() }),
        Box::new(MixedPhases::standard(max_weight)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use kkt_graphs::generators;

    fn base(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::connected_gnp(24, 0.25, 500, &mut rng)
    }

    #[test]
    fn bridge_flags_match_naive_connectivity_probe() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            // Sparse graphs (and one ring, one tree) so real bridges occur.
            let g = match seed % 3 {
                0 => generators::connected_gnp(18, 0.06, 50, &mut rng),
                1 => generators::random_tree(15, 50, &mut rng),
                _ => generators::ring(12, 50, &mut rng),
            };
            let flags = bridge_flags(&g);
            for e in g.live_edges() {
                let edge = *g.edge(e);
                let mut probe = g.clone();
                probe.remove_edge(edge.u, edge.v);
                let naive = probe.component_count() > g.component_count();
                assert_eq!(
                    flags[e.0], naive,
                    "seed {seed}: edge ({}, {}) bridge flag mismatch",
                    edge.u, edge.v
                );
            }
        }
    }

    #[test]
    fn all_standard_scenarios_generate_valid_traces() {
        let g = base(1);
        for scenario in standard_suite(500) {
            let w = scenario.generate(&g, 20, 42);
            assert!(!w.is_empty(), "{} generated nothing", scenario.id());
            let stats = w.validate(&g).unwrap_or_else(|e| panic!("{}: {e}", scenario.id()));
            assert!(stats.deletions + stats.insertions + stats.weight_changes > 0);
        }
    }

    #[test]
    fn poisson_churn_keeps_the_network_connected() {
        let g = base(2);
        let w = PoissonChurn::default().generate(&g, 40, 7);
        let stats = w.validate(&g).unwrap();
        assert_eq!(stats.max_components, 1);
        assert!(stats.deletions > 0 && stats.insertions > 0);
    }

    #[test]
    fn adversarial_deletions_hit_tree_edges() {
        let g = base(3);
        let w = AdversarialTreeCut::default().generate(&g, 30, 11);
        let stats = w.validate(&g).unwrap();
        assert!(stats.deletions > 0);
        // The satellite acceptance bar is ≥ half; this generator targets the
        // tree by construction, so every deletion hits it.
        assert_eq!(stats.tree_edge_deletions, stats.deletions);
        assert_eq!(stats.max_components, 1);
    }

    #[test]
    fn partition_heal_disconnects_and_restores() {
        let g = base(4);
        let w = PartitionHeal::default().generate(&g, 6, 13);
        let stats = w.validate(&g).unwrap();
        assert!(stats.bursts >= 2);
        assert!(stats.max_components > 1, "the partition must actually disconnect");
        assert_eq!(stats.final_edges, g.edge_count(), "healing restores every link");
    }

    #[test]
    fn multi_edge_cuts_severs_independent_tree_edges_and_stays_connected() {
        let g = base(8);
        for k in [1usize, 4, 8] {
            let scenario = MultiEdgeCuts { burst_size: k, max_weight: 500 };
            let w = scenario.generate(&g, 6, 23);
            let stats = w.validate(&g).unwrap();
            assert!(stats.bursts >= 2, "k={k}: failure + replenish bursts");
            assert!(stats.deletions > 0);
            assert_eq!(
                stats.tree_edge_deletions, stats.deletions,
                "k={k}: every severed edge is a current-tree edge"
            );
            assert_eq!(stats.max_components, 1, "k={k}: the network never partitions");
            // Failure bursts carry exactly k deletions (the base graph is
            // dense enough for a full pick at these sizes).
            let delete_bursts: Vec<usize> = w
                .events
                .iter()
                .filter_map(|e| match e {
                    WorkloadEvent::Burst { events }
                        if matches!(events[0], WorkloadEvent::DeleteEdge { .. }) =>
                    {
                        Some(events.len())
                    }
                    _ => None,
                })
                .collect();
            assert!(!delete_bursts.is_empty());
            assert!(delete_bursts.iter().all(|&len| len == k), "k={k}: {delete_bursts:?}");
        }
    }

    #[test]
    fn multi_edge_cuts_is_deterministic_per_seed() {
        let g = base(9);
        let scenario = MultiEdgeCuts::default();
        let a = scenario.generate(&g, 8, 77);
        let b = scenario.generate(&g, 8, 77);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = scenario.generate(&g, 8, 78);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn generators_stay_well_defined_on_the_tree_only_rung() {
        // The m = n - 1 boundary: every live edge is a bridge and the
        // non-tree pool is empty, so deletion samplers must bail (not spin)
        // and fall through to insertions. Every standard family must
        // terminate and emit an applicable trace.
        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::random_tree(20, 400, &mut rng);
        for scenario in standard_suite(400) {
            let w = scenario.generate(&g, 12, 5);
            let stats = w.validate(&g).unwrap_or_else(|e| panic!("{}: {e}", scenario.id()));
            assert!(
                stats.deletions + stats.insertions + stats.weight_changes > 0,
                "{}: a tree-only base still admits events",
                scenario.id()
            );
        }
        // The adversary specifically: with no severable tree edge, every
        // event falls back to replenishment until cycles exist, after which
        // cuts resume — the trace must use its budget, not skip events.
        let w = AdversarialTreeCut { max_weight: 400 }.generate(&g, 12, 5);
        let stats = w.validate(&g).unwrap();
        assert_eq!(w.len(), 12, "fallbacks spend the whole event budget");
        assert!(stats.insertions > 0, "the tree-only rung forces replenishment first");
        assert!(stats.deletions > 0, "inserted cycles re-arm the adversary");
        // Poisson churn starts with insertions for the same reason.
        let w = PoissonChurn { delete_fraction: 1.0, max_weight: 400 }.generate(&g, 6, 7);
        let stats = w.validate(&g).unwrap();
        assert!(stats.insertions > 0);
        assert_eq!(stats.max_components, 1);
    }

    #[test]
    fn generators_stay_well_defined_on_the_complete_rung() {
        // The m = n(n-1)/2 boundary: the absent pool is empty, so insertion
        // samplers must bail deterministically and fall through to
        // deletions/cuts.
        let mut rng = StdRng::seed_from_u64(32);
        let g = generators::complete(14, 300, &mut rng);
        for scenario in standard_suite(300) {
            let w = scenario.generate(&g, 10, 9);
            assert!(!w.is_empty(), "{} generated nothing on K_n", scenario.id());
            w.validate(&g).unwrap_or_else(|e| panic!("{}: {e}", scenario.id()));
        }
        // The adversary's replenish steps fall back to tree cuts on K_n.
        let w = AdversarialTreeCut { max_weight: 300 }.generate(&g, 9, 11);
        let stats = w.validate(&g).unwrap();
        assert!(stats.deletions >= w.len() - stats.insertions);
        assert!(stats.deletions > 0);
    }

    #[test]
    fn absent_pair_sampling_is_exact_near_complete() {
        // Complete minus one pair: rejection would average n²/2 draws per
        // hit; the dense fallback must find the unique absent pair at once.
        let mut rng = StdRng::seed_from_u64(33);
        let mut g = generators::complete(12, 100, &mut rng);
        g.remove_edge(3, 7).unwrap();
        let w = PoissonChurn { delete_fraction: 0.0, max_weight: 100 }.generate(&g, 1, 13);
        assert_eq!(w.len(), 1);
        match w.events[0] {
            WorkloadEvent::InsertEdge { u, v, .. } => {
                assert_eq!((u.min(v), u.max(v)), (3, 7), "the unique absent pair");
            }
            ref other => panic!("expected an insert, got {other:?}"),
        }
    }

    #[test]
    fn partition_bursts_respect_density() {
        // At m/n = 4 the historical quarter region (and its ~O(n) boundary)
        // is preserved; on dense graphs the region shrinks so the burst
        // stays O(n) boundary edges instead of Θ(m).
        let mut rng = StdRng::seed_from_u64(34);
        let n = 32;
        let sparse = generators::connected_with_edges(n, 4 * n, 200, &mut rng);
        let dense = generators::connected_dense(n, n * (n - 1) / 2, 200, &mut rng);
        for (g, label) in [(&sparse, "sparse"), (&dense, "dense")] {
            let w = PartitionHeal { max_weight: 200 }.generate(g, 6, 17);
            let stats = w.validate(g).unwrap();
            assert!(stats.bursts >= 2, "{label}");
            assert!(stats.max_components > 1, "{label}: the partition must disconnect");
            let largest_burst = w
                .events
                .iter()
                .map(WorkloadEvent::primitive_count)
                .max()
                .expect("trace is non-empty");
            assert!(
                largest_burst <= 3 * n,
                "{label}: burst of {largest_burst} primitives on n = {n} is not O(n)"
            );
        }
        // The dense graph's quarter-region boundary would be Θ(m) ≈ n²/4
        // edges (~8n here); the density-aware region keeps it under 3n.
    }

    #[test]
    fn weight_drift_only_changes_weights() {
        let g = base(5);
        let w = WeightDrift::default().generate(&g, 25, 17);
        let stats = w.validate(&g).unwrap();
        assert_eq!(stats.deletions, 0);
        assert_eq!(stats.insertions, 0);
        assert_eq!(stats.weight_changes, 25);
    }

    #[test]
    fn mixed_phases_compose() {
        let g = base(6);
        let w = MixedPhases::standard(500).generate(&g, 24, 19);
        let stats = w.validate(&g).unwrap();
        assert!(stats.weight_changes > 0, "drift phase contributes");
        assert!(stats.deletions > 0, "churn phase contributes");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = base(7);
        for scenario in standard_suite(500) {
            let a = scenario.generate(&g, 15, 1234);
            let b = scenario.generate(&g, 15, 1234);
            assert_eq!(a, b, "{} must be deterministic", scenario.id());
            assert_eq!(a.fingerprint(), b.fingerprint());
            let c = scenario.generate(&g, 15, 4321);
            assert_ne!(a.events, c.events, "{} must vary with the seed", scenario.id());
        }
    }
}
