//! Cost reports: per-event records, per-run reports, and the multi-policy
//! comparison document the experiment suite serialises.

use serde::{Deserialize, Serialize};

use kkt_congest::{CostReport, PhaseCost, PhaseLedger, Scheduler};
use kkt_graphs::Graph;

use crate::fingerprint::fingerprint_hex;
use crate::workload::WorkloadStats;

/// The *achieved* density ratio `m/n` of a base graph — what reports record
/// (the rejection-sampling builder may undershoot the configured budget, so
/// this is not always the ladder's nominal ratio).
pub fn m_over_n(g: &Graph) -> f64 {
    g.edge_count() as f64 / g.node_count().max(1) as f64
}

/// The shared sealing discipline of the suite documents: fingerprint the
/// whole serialised report with its fingerprint field emptied (so sealing
/// is idempotent and covers the run parameters, not just the result body).
fn sealed_fingerprint<T: Serialize>(doc: &T) -> String {
    fingerprint_hex(&serde_json::to_string(doc).expect("report serialises"))
}

/// Stable text label of a scheduler, used in reports.
pub fn scheduler_label(scheduler: Scheduler) -> String {
    match scheduler {
        Scheduler::Synchronous => "synchronous".to_string(),
        Scheduler::RandomAsync { max_delay } => format!("random_async(max_delay={max_delay})"),
    }
}

/// Adds two cost snapshots field-wise (`max_message_bits` takes the max).
pub fn add_costs(a: CostReport, b: CostReport) -> CostReport {
    CostReport {
        messages: a.messages + b.messages,
        bits: a.bits + b.bits,
        time: a.time + b.time,
        broadcast_echoes: a.broadcast_echoes + b.broadcast_echoes,
        max_message_bits: a.max_message_bits.max(b.max_message_bits),
    }
}

/// The communication cost of one top-level event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCost {
    /// Index of the event in the trace.
    pub index: usize,
    /// Event kind label (`delete`, `insert`, `change_weight`, `burst(k)`).
    pub kind: String,
    /// Messages spent processing the event.
    pub messages: u64,
    /// Bits spent.
    pub bits: u64,
    /// Simulated time spent (rounds / makespan).
    pub time: u64,
}

impl EventCost {
    /// Builds a record from a cost delta.
    pub fn new(index: usize, kind: String, delta: CostReport) -> Self {
        EventCost { index, kind, messages: delta.messages, bits: delta.bits, time: delta.time }
    }
}

/// The full cost accounting of one (workload, policy, scheduler) replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Scenario identifier of the generating workload.
    pub scenario: String,
    /// Workload name.
    pub workload_name: String,
    /// Fingerprint of the replayed trace.
    pub workload_fingerprint: String,
    /// Maintenance policy label.
    pub policy: String,
    /// `mst` or `st`.
    pub tree_kind: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Nodes.
    pub n: usize,
    /// Live edges of the base graph.
    pub m_initial: usize,
    /// Top-level events replayed.
    pub top_level_events: usize,
    /// Primitive events replayed (bursts flattened).
    pub primitive_events: usize,
    /// Cost of the initial construction (not counted in `total`).
    pub build: CostReport,
    /// Per-event costs, in trace order.
    pub per_event: Vec<EventCost>,
    /// Sum of the per-event costs.
    pub total: CostReport,
    /// `total.messages / top_level_events`.
    pub mean_messages_per_event: f64,
    /// Largest single-event message count.
    pub max_messages_per_event: u64,
    /// Oracle checkpoints passed.
    pub checkpoints_verified: usize,
}

impl ReplayReport {
    /// Records one event's cost. The full [`CostReport`] delta feeds the
    /// totals (so `broadcast_echoes` and `max_message_bits` are preserved);
    /// the per-event record keeps the compact three-field form.
    pub fn push_event(&mut self, index: usize, kind: String, delta: CostReport) {
        self.total = add_costs(self.total, delta);
        self.max_messages_per_event = self.max_messages_per_event.max(delta.messages);
        self.per_event.push(EventCost::new(index, kind, delta));
    }

    /// Computes the derived summary fields; call once after the last event.
    pub fn finalize(&mut self) {
        let events = self.per_event.len().max(1);
        self.mean_messages_per_event = self.total.messages as f64 / events as f64;
    }

    /// Fingerprint of the whole report (stable across runs for the same
    /// seed: scheduling, costs and verification results are deterministic).
    pub fn fingerprint(&self) -> String {
        fingerprint_hex(&serde_json::to_string(self).expect("report serialises"))
    }
}

/// One scenario compared across maintenance policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioComparison {
    /// Scenario identifier.
    pub scenario: String,
    /// Fingerprint of the generated trace.
    pub workload_fingerprint: String,
    /// Trace statistics from validation.
    pub stats: WorkloadStats,
    /// One report per policy, impromptu first.
    pub reports: Vec<ReplayReport>,
}

impl ScenarioComparison {
    /// The report for a given policy label, if present.
    pub fn report_for(&self, policy: &str) -> Option<&ReplayReport> {
        self.reports.iter().find(|r| r.policy == policy)
    }
}

/// The top-level document `exp9_churn_policies` emits: every scenario of the
/// standard battery replayed under every applicable policy, with a
/// fingerprint sealing the whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnSuiteReport {
    /// Nodes of the base graph.
    pub n: usize,
    /// Live edges of the base graph.
    pub m: usize,
    /// Top-level events per scenario.
    pub events_per_scenario: usize,
    /// Density of the base graph (`m / n`) — the E13 sweep axis, recorded so
    /// a report names its density rung without arithmetic on `n`/`m`.
    pub m_over_n: f64,
    /// Master seed.
    pub seed: u64,
    /// `mst` or `st`.
    pub tree_kind: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Per-scenario comparisons.
    pub scenarios: Vec<ScenarioComparison>,
    /// FNV-1a fingerprint over the whole serialised document (with this
    /// field emptied) — equal seeds yield byte-identical reports, so equal
    /// fingerprints, and the fingerprint covers the run parameters
    /// (`n`, `m`, density, scheduler) as well as the scenario results.
    pub fingerprint: String,
}

impl ChurnSuiteReport {
    /// Seals the report (see [`sealed_fingerprint`]).
    pub fn seal(&mut self) {
        self.fingerprint = String::new();
        self.fingerprint = sealed_fingerprint(self);
    }
}

/// One scale point of the E11 sweep: a scenario instantiated at a given `n`
/// and replayed under every applicable policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Nodes of this point's base graph.
    pub n: usize,
    /// Live edges of this point's base graph.
    pub m: usize,
    /// Top-level events of the trace.
    pub events: usize,
    /// Checkpoint interval the replays ran with (`0` = final event only).
    pub verify_every: usize,
    /// Scenario identifier.
    pub scenario: String,
    /// Fingerprint of the generated trace.
    pub workload_fingerprint: String,
    /// Trace statistics from validation.
    pub stats: WorkloadStats,
    /// One report per policy, impromptu first.
    pub reports: Vec<ReplayReport>,
}

impl ScalePoint {
    /// The report for a given policy label, if present.
    pub fn report_for(&self, policy: &str) -> Option<&ReplayReport> {
        self.reports.iter().find(|r| r.policy == policy)
    }
}

/// The document `exp11_scale_sweep` emits: the same scenario replayed at a
/// ladder of network sizes, pricing bits-per-event vs `n` for every policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleSweepReport {
    /// Master seed.
    pub seed: u64,
    /// `mst` or `st`.
    pub tree_kind: String,
    /// Scheduler label.
    pub scheduler: String,
    /// One entry per swept `n`, ascending.
    pub points: Vec<ScalePoint>,
    /// FNV-1a fingerprint over the serialised `points` array.
    pub fingerprint: String,
}

impl ScaleSweepReport {
    /// Seals the report (see [`sealed_fingerprint`]).
    pub fn seal(&mut self) {
        self.fingerprint = String::new();
        self.fingerprint = sealed_fingerprint(self);
    }
}

/// One grid cell of the E13 dynamic density sweep: a scenario instantiated
/// at a given `(n, m/n)` and replayed under every applicable policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityPoint {
    /// Nodes of this point's base graph.
    pub n: usize,
    /// Live edges of this point's base graph (the *achieved* count — dense
    /// rungs clamp to the complete graph).
    pub m: usize,
    /// Ladder label of the density rung (`"2"`, `"4"`, …, `"n/8"`, `"n/2"`).
    pub density: String,
    /// Achieved density ratio `m / n`.
    pub m_over_n: f64,
    /// Top-level events of the trace.
    pub events: usize,
    /// Checkpoint interval the replays ran with (`0` = final event only).
    pub verify_every: usize,
    /// Scenario identifier.
    pub scenario: String,
    /// Fingerprint of the generated trace.
    pub workload_fingerprint: String,
    /// Trace statistics from validation.
    pub stats: WorkloadStats,
    /// One report per policy, impromptu first.
    pub reports: Vec<ReplayReport>,
}

impl DensityPoint {
    /// The report for a given policy label, if present.
    pub fn report_for(&self, policy: &str) -> Option<&ReplayReport> {
        self.reports.iter().find(|r| r.policy == policy)
    }
}

/// The document `exp13_dynamic_density` emits: poisson + adversarial traces
/// replayed across the `n × m/n` grid, pricing bits-per-event vs density for
/// every maintenance policy — the dynamic analogue of the E8 construction
/// crossover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensitySweepReport {
    /// Master seed.
    pub seed: u64,
    /// `mst` or `st`.
    pub tree_kind: String,
    /// Scheduler label.
    pub scheduler: String,
    /// One entry per `(n, density, scenario)` cell, `n`-major then ladder
    /// order.
    pub points: Vec<DensityPoint>,
    /// FNV-1a fingerprint over the whole serialised document (with this
    /// field emptied).
    pub fingerprint: String,
}

impl DensitySweepReport {
    /// Seals the report (see [`sealed_fingerprint`]).
    pub fn seal(&mut self) {
        self.fingerprint = String::new();
        self.fingerprint = sealed_fingerprint(self);
    }
}

/// One grid cell of the E14 cost anatomy: one `(n, density, scenario,
/// policy)` replay with its cost decomposed by phase (summed over the whole
/// trace, build excluded — the anatomy prices *maintenance*).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnatomyPoint {
    /// Nodes of this point's base graph.
    pub n: usize,
    /// Live edges of this point's base graph.
    pub m: usize,
    /// Ladder label of the density rung.
    pub density: String,
    /// Achieved density ratio `m / n`.
    pub m_over_n: f64,
    /// Scenario identifier.
    pub scenario: String,
    /// Policy label.
    pub policy: String,
    /// Top-level events of the trace.
    pub events: usize,
    /// Oracle checkpoints that verified.
    pub checkpoints_verified: usize,
    /// Fingerprint of the generated trace.
    pub workload_fingerprint: String,
    /// Per-phase cost over all events.
    pub phases: PhaseLedger,
    /// The phase sums — conservation-checked against the replay's event
    /// totals before the point is recorded.
    pub total: PhaseCost,
    /// Label of the phase with the most bits (ties break in ledger order).
    pub dominant_phase: String,
}

/// The document `exp14_cost_anatomy` emits: where do the bits go? Every
/// `(n, density)` cell of the E13 grid replayed under every MST policy with
/// the phase-attributing observer installed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostAnatomyReport {
    /// Master seed.
    pub seed: u64,
    /// `mst` or `st`.
    pub tree_kind: String,
    /// Scheduler label.
    pub scheduler: String,
    /// One entry per `(n, density, scenario, policy)`, `n`-major then ladder
    /// then scenario then policy order.
    pub points: Vec<AnatomyPoint>,
    /// FNV-1a fingerprint over the whole serialised document (with this
    /// field emptied).
    pub fingerprint: String,
}

impl CostAnatomyReport {
    /// Seals the report (see [`sealed_fingerprint`]).
    pub fn seal(&mut self) {
        self.fingerprint = String::new();
        self.fingerprint = sealed_fingerprint(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(messages: u64, bits: u64, time: u64) -> CostReport {
        CostReport { messages, bits, time, broadcast_echoes: 0, max_message_bits: 0 }
    }

    #[test]
    fn add_costs_is_fieldwise() {
        let a =
            CostReport { messages: 1, bits: 10, time: 3, broadcast_echoes: 2, max_message_bits: 7 };
        let b =
            CostReport { messages: 2, bits: 20, time: 4, broadcast_echoes: 1, max_message_bits: 5 };
        let c = add_costs(a, b);
        assert_eq!(c.messages, 3);
        assert_eq!(c.bits, 30);
        assert_eq!(c.time, 7);
        assert_eq!(c.broadcast_echoes, 3);
        assert_eq!(c.max_message_bits, 7);
    }

    #[test]
    fn report_accumulates_and_finalizes() {
        let mut r = ReplayReport {
            scenario: "s".into(),
            workload_name: "w".into(),
            workload_fingerprint: "f".into(),
            policy: "p".into(),
            tree_kind: "mst".into(),
            scheduler: "synchronous".into(),
            n: 4,
            m_initial: 5,
            top_level_events: 2,
            primitive_events: 2,
            build: CostReport::default(),
            per_event: Vec::new(),
            total: CostReport::default(),
            mean_messages_per_event: 0.0,
            max_messages_per_event: 0,
            checkpoints_verified: 0,
        };
        r.push_event(
            0,
            "delete".into(),
            CostReport {
                messages: 10,
                bits: 100,
                time: 2,
                broadcast_echoes: 3,
                max_message_bits: 9,
            },
        );
        r.push_event(1, "insert".into(), cost(4, 40, 1));
        r.finalize();
        assert_eq!(r.total.messages, 14);
        assert_eq!(r.max_messages_per_event, 10);
        // The full delta reaches the totals, not just the three-field record.
        assert_eq!(r.total.broadcast_echoes, 3);
        assert_eq!(r.total.max_message_bits, 9);
        assert!((r.mean_messages_per_event - 7.0).abs() < 1e-9);
        // JSON round-trip preserves the report exactly.
        let text = serde_json::to_string(&r).unwrap();
        let back: ReplayReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.fingerprint(), r.fingerprint());
    }

    #[test]
    fn scheduler_labels_are_stable() {
        assert_eq!(scheduler_label(Scheduler::Synchronous), "synchronous");
        assert_eq!(
            scheduler_label(Scheduler::RandomAsync { max_delay: 8 }),
            "random_async(max_delay=8)"
        );
    }

    #[test]
    fn suite_report_seals_deterministically() {
        let mut a = ChurnSuiteReport {
            n: 8,
            m: 12,
            events_per_scenario: 3,
            m_over_n: 1.5,
            seed: 1,
            tree_kind: "mst".into(),
            scheduler: "synchronous".into(),
            scenarios: Vec::new(),
            fingerprint: String::new(),
        };
        let mut b = a.clone();
        a.seal();
        b.seal();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.fingerprint.len(), 16);
        // Sealing is idempotent: resealing an already-sealed report lands on
        // the same fingerprint (the field is emptied before hashing).
        let sealed = a.fingerprint.clone();
        a.seal();
        assert_eq!(a.fingerprint, sealed);
        // The fingerprint covers the run parameters, not just the scenarios:
        // two runs at different density rungs must not collide.
        let mut denser = b.clone();
        denser.m = 28;
        denser.m_over_n = 3.5;
        denser.seal();
        assert_ne!(denser.fingerprint, b.fingerprint);
    }

    #[test]
    fn density_sweep_report_seals_and_round_trips() {
        let mut report = DensitySweepReport {
            seed: 7,
            tree_kind: "mst".into(),
            scheduler: "synchronous".into(),
            points: vec![DensityPoint {
                n: 16,
                m: 120,
                density: "n/2".into(),
                m_over_n: 7.5,
                events: 4,
                verify_every: 2,
                scenario: "poisson_churn(0.50)".into(),
                workload_fingerprint: "abcd".into(),
                stats: WorkloadStats::default(),
                reports: Vec::new(),
            }],
            fingerprint: String::new(),
        };
        report.seal();
        assert_eq!(report.fingerprint.len(), 16);
        let sealed = report.fingerprint.clone();
        report.seal();
        assert_eq!(report.fingerprint, sealed, "sealing is idempotent");
        let text = serde_json::to_string(&report).unwrap();
        let back: DensitySweepReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.points[0].report_for("nope"), None);
        // A different rung label alone moves the fingerprint.
        let mut other = report.clone();
        other.points[0].density = "16".into();
        other.seal();
        assert_ne!(other.fingerprint, report.fingerprint);
    }
}
