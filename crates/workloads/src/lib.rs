//! # kkt-workloads — deterministic dynamic-network scenario engine
//!
//! The paper's headline contribution is *impromptu repair*: after an edge
//! deletion or insertion the MST is fixed with `Õ(n)` communication instead
//! of being rebuilt. The interesting workloads are therefore long
//! **sequences** of topology changes. This crate expresses them:
//!
//! * **Traces** — [`Workload`] is a named, seeded sequence of
//!   [`WorkloadEvent`]s (deletions, insertions, weight changes, and batched
//!   [`WorkloadEvent::Burst`]s), validated against the base graph and
//!   fingerprinted so the same seed always yields a byte-identical trace.
//! * **Scenario generators** — composable [`Scenario`] implementations:
//!   memoryless [`PoissonChurn`], MST-severing [`AdversarialTreeCut`],
//!   partition-and-heal failure bursts ([`PartitionHeal`]), simultaneous
//!   independent tree-edge failures ([`MultiEdgeCuts`]), hot-edge
//!   [`WeightDrift`], and sequential [`MixedPhases`] lifecycles.
//! * **Replay** — [`ReplayHarness`] drives a trace through a
//!   [`MaintenancePolicy`]: the paper's impromptu repairs on a
//!   [`kkt_core::MaintainedForest`] (one repair per primitive, or burst-wise
//!   batched via [`MaintenancePolicy::BatchedRepair`]), or
//!   rebuild-from-scratch baselines (`Build MST` rerun, GHS, flooding),
//!   under synchronous or random-async delivery, verifying against the
//!   sequential Kruskal oracle at checkpoints.
//! * **Reports** — per-event and cumulative [`ReplayReport`]s, and the
//!   multi-scenario [`ChurnSuiteReport`] the `exp9_churn_policies` binary
//!   serialises as deterministic JSON.
//! * **Density axis** — [`SuiteParams::density_preset`] instantiates any
//!   suite at a rung of the [`Density`] ladder
//!   (`m/n ∈ {2, 4, 8, 16, n/8, n/2}`, where `n/2` is the complete graph):
//!   the base graph is rejection-sampled below a quarter of `K_n` and
//!   exactly enumerated by `kkt_graphs::generators::connected_dense` above
//!   it, every scenario generator is well-defined from the tree-only floor
//!   (`m = n - 1`) to `K_n`, and the achieved `m/n` is recorded in (and
//!   fingerprinted with) every suite report. The `exp13_dynamic_density`
//!   binary sweeps the whole `n × m/n` grid (EXPERIMENTS.md §E13).
//!
//! ```rust
//! use kkt_workloads::{run_churn_suite, Density, SuiteParams};
//!
//! // The densest rung of the ladder at n = 16: the complete graph K_16.
//! let params = SuiteParams {
//!     events: 4,
//!     verify_every: 2,
//!     ..SuiteParams::density_preset(16, Density::NOver2)
//! };
//! let report = run_churn_suite(&params).unwrap();
//! assert_eq!(report.m, 16 * 15 / 2);
//! ```
//!
//! # Example
//!
//! ```rust
//! use kkt_workloads::{MaintenancePolicy, PoissonChurn, ReplayHarness, Scenario};
//! use kkt_graphs::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let base = generators::connected_gnp(24, 0.25, 500, &mut rng);
//!
//! let workload = PoissonChurn::default().generate(&base, 8, 42);
//! assert_eq!(workload.fingerprint(), PoissonChurn::default().generate(&base, 8, 42).fingerprint());
//!
//! let harness = ReplayHarness::default();
//! let report = harness.replay(&base, &workload, MaintenancePolicy::Impromptu).unwrap();
//! assert_eq!(report.checkpoints_verified, workload.len());
//! ```

pub mod event;
pub mod fingerprint;
pub mod replay;
pub mod report;
pub mod scenarios;
pub mod suite;
pub mod workload;

pub use event::WorkloadEvent;
pub use fingerprint::{fingerprint_hex, fnv1a64};
pub use kkt_obs::{JsonlObserver, MetricsObserver, Observer, PhaseAccumulator, TraceRecord};
pub use replay::{MaintenancePolicy, ReplayConfig, ReplayError, ReplayHarness};
pub use report::{
    AnatomyPoint, ChurnSuiteReport, CostAnatomyReport, DensityPoint, DensitySweepReport, EventCost,
    ReplayReport, ScalePoint, ScaleSweepReport, ScenarioComparison,
};
pub use scenarios::{
    standard_suite, AdversarialTreeCut, MixedPhases, MultiEdgeCuts, PartitionHeal, PoissonChurn,
    Scenario, WeightDrift,
};
pub use suite::{run_churn_suite, Density, SuiteParams};
pub use workload::{Workload, WorkloadStats};
