//! # kkt-workloads — deterministic dynamic-network scenario engine
//!
//! The paper's headline contribution is *impromptu repair*: after an edge
//! deletion or insertion the MST is fixed with `Õ(n)` communication instead
//! of being rebuilt. The interesting workloads are therefore long
//! **sequences** of topology changes. This crate expresses them:
//!
//! * **Traces** — [`Workload`] is a named, seeded sequence of
//!   [`WorkloadEvent`]s (deletions, insertions, weight changes, and batched
//!   [`WorkloadEvent::Burst`]s), validated against the base graph and
//!   fingerprinted so the same seed always yields a byte-identical trace.
//! * **Scenario generators** — composable [`Scenario`] implementations:
//!   memoryless [`PoissonChurn`], MST-severing [`AdversarialTreeCut`],
//!   partition-and-heal failure bursts ([`PartitionHeal`]), simultaneous
//!   independent tree-edge failures ([`MultiEdgeCuts`]), hot-edge
//!   [`WeightDrift`], and sequential [`MixedPhases`] lifecycles.
//! * **Replay** — [`ReplayHarness`] drives a trace through a
//!   [`MaintenancePolicy`]: the paper's impromptu repairs on a
//!   [`kkt_core::MaintainedForest`] (one repair per primitive, or burst-wise
//!   batched via [`MaintenancePolicy::BatchedRepair`]), or
//!   rebuild-from-scratch baselines (`Build MST` rerun, GHS, flooding),
//!   under synchronous or random-async delivery, verifying against the
//!   sequential Kruskal oracle at checkpoints.
//! * **Reports** — per-event and cumulative [`ReplayReport`]s, and the
//!   multi-scenario [`ChurnSuiteReport`] the `exp9_churn_policies` binary
//!   serialises as deterministic JSON.
//!
//! # Example
//!
//! ```rust
//! use kkt_workloads::{MaintenancePolicy, PoissonChurn, ReplayHarness, Scenario};
//! use kkt_graphs::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let base = generators::connected_gnp(24, 0.25, 500, &mut rng);
//!
//! let workload = PoissonChurn::default().generate(&base, 8, 42);
//! assert_eq!(workload.fingerprint(), PoissonChurn::default().generate(&base, 8, 42).fingerprint());
//!
//! let harness = ReplayHarness::default();
//! let report = harness.replay(&base, &workload, MaintenancePolicy::Impromptu).unwrap();
//! assert_eq!(report.checkpoints_verified, workload.len());
//! ```

pub mod event;
pub mod fingerprint;
pub mod replay;
pub mod report;
pub mod scenarios;
pub mod suite;
pub mod workload;

pub use event::WorkloadEvent;
pub use fingerprint::{fingerprint_hex, fnv1a64};
pub use replay::{MaintenancePolicy, ReplayConfig, ReplayError, ReplayHarness};
pub use report::{
    ChurnSuiteReport, EventCost, ReplayReport, ScalePoint, ScaleSweepReport, ScenarioComparison,
};
pub use scenarios::{
    standard_suite, AdversarialTreeCut, MixedPhases, MultiEdgeCuts, PartitionHeal, PoissonChurn,
    Scenario, WeightDrift,
};
pub use suite::{run_churn_suite, SuiteParams};
pub use workload::{Workload, WorkloadStats};
