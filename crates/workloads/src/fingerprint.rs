//! Deterministic fingerprinting of traces and reports.
//!
//! A fingerprint is the 64-bit FNV-1a hash of a canonical JSON encoding,
//! rendered as 16 lowercase hex digits. FNV-1a is not cryptographic — the
//! point is a *stable, dependency-free* checksum that changes whenever the
//! underlying data changes, so "same seed ⇒ byte-identical report" is
//! checkable at a glance (and in tests) without diffing whole documents.

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// 64-bit FNV-1a over raw bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a of a string, as 16 hex digits.
pub fn fingerprint_hex(text: &str) -> String {
    format!("{:016x}", fnv1a64(text.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(fingerprint_hex("").len(), 16);
        assert_eq!(fingerprint_hex(""), "cbf29ce484222325");
    }

    #[test]
    fn small_changes_change_the_fingerprint() {
        assert_ne!(fingerprint_hex("{\"a\":1}"), fingerprint_hex("{\"a\":2}"));
    }
}
