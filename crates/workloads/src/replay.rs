//! The replay harness: drives a [`Workload`] through a maintenance policy
//! on the simulated network, verifying against the sequential oracle at
//! checkpoints and accounting every bit.
//!
//! Checkpoints are verified against the **incremental shadow oracle**
//! ([`ShadowOracle`]): the oracle applies every primitive to its own copy of
//! the evolving graph, maintaining the unique minimum spanning forest by
//! cut/cycle rules in `O(n)`-ish work per event, so a checkpoint comparison
//! is an edge-for-edge diff instead of the full Kruskal re-run the harness
//! used to pay (`O(m log m)` per checkpoint — the wall-clock blocker for
//! n ≥ 1024 replays). The full sequential verification is retained behind
//! [`ReplayConfig::paranoid`].

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use kkt_baselines::{build_mst_ghs, build_st_by_flooding};
use kkt_congest::{
    CongestError, CostReport, DeliveryQueueKind, Network, NetworkConfig, PhaseLedger, Scheduler,
};
use kkt_core::{
    build_mst, build_st, BatchError, CoreError, DeleteOutcome, InsertOutcome, KktConfig,
    MaintainOptions, MaintainedForest, TreeKind, UpdateOutcome,
};
use kkt_graphs::generators::Update;
use kkt_graphs::{verify_mst, verify_spanning_forest, Graph, ShadowOracle, SpanningForest};
use kkt_obs::{Observer, TraceRecord};

use crate::event::WorkloadEvent;
use crate::report::{scheduler_label, ReplayReport};
use crate::workload::Workload;

/// How the spanning structure is kept correct while the trace plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenancePolicy {
    /// The paper's impromptu repairs through [`MaintainedForest`] —
    /// `Õ(n)` communication per update, one full repair per primitive even
    /// inside bursts (the *sequential* baseline).
    Impromptu,
    /// Impromptu repairs with burst batching
    /// ([`MaintainedForest::apply_batch`]): each burst is classified once and
    /// all severed tree edges are mended in one pipelined Borůvka pass with
    /// concurrent per-fragment searches and amortized announces.
    BatchedRepair,
    /// Rebuild from scratch with the paper's own `Build MST`/`Build ST`
    /// after every top-level event (bursts trigger one rebuild).
    RebuildKkt,
    /// Rebuild with the GHS-style baseline after every top-level event
    /// (MST only; GHS is inherently synchronous).
    RebuildGhs,
    /// Rebuild a spanning forest by flooding from one root per component
    /// after every top-level event (ST only; the Θ(m) folk-theorem bound).
    RebuildFlood,
}

impl MaintenancePolicy {
    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            MaintenancePolicy::Impromptu => "impromptu_repair",
            MaintenancePolicy::BatchedRepair => "batched_repair",
            MaintenancePolicy::RebuildKkt => "rebuild_kkt",
            MaintenancePolicy::RebuildGhs => "rebuild_ghs",
            MaintenancePolicy::RebuildFlood => "rebuild_flood",
        }
    }

    /// Whether the policy can maintain the given structure kind.
    pub fn supports(self, kind: TreeKind) -> bool {
        match self {
            MaintenancePolicy::Impromptu
            | MaintenancePolicy::BatchedRepair
            | MaintenancePolicy::RebuildKkt => true,
            MaintenancePolicy::RebuildGhs => kind == TreeKind::Mst,
            MaintenancePolicy::RebuildFlood => kind == TreeKind::St,
        }
    }

    /// The policies applicable to `kind`, impromptu (sequential) first.
    pub fn all_for(kind: TreeKind) -> Vec<MaintenancePolicy> {
        [
            MaintenancePolicy::Impromptu,
            MaintenancePolicy::BatchedRepair,
            MaintenancePolicy::RebuildKkt,
            MaintenancePolicy::RebuildGhs,
            MaintenancePolicy::RebuildFlood,
        ]
        .into_iter()
        .filter(|p| p.supports(kind))
        .collect()
    }
}

/// Configuration of one replay run.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Which structure is maintained (and which oracle verifies it).
    pub kind: TreeKind,
    /// Delivery model for repairs and (where the algorithm tolerates it)
    /// rebuilds. GHS rebuilds always run synchronously — the baseline is
    /// defined in lock-step rounds.
    pub scheduler: Scheduler,
    /// Verify against the sequential oracle every `k` top-level events
    /// (`0` = only after the final event). Every run verifies at the end.
    pub verify_every: usize,
    /// Master seed: all protocol coins and delivery delays derive from it.
    pub seed: u64,
    /// Paranoid checkpoints: in addition to the `O(n)` incremental-oracle
    /// comparison, re-run the full sequential verification (a fresh Kruskal
    /// over the shadow graph, cross-checked against the incremental forest).
    /// Costs what the pre-oracle harness paid on every checkpoint; off by
    /// default.
    pub paranoid: bool,
    /// Delivery-queue implementation for every engine run of the replay
    /// (execution strategy only; reports are bit-identical either way —
    /// asserted by the queue-equivalence tests).
    pub queue: DeliveryQueueKind,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            kind: TreeKind::Mst,
            scheduler: Scheduler::RandomAsync { max_delay: 8 },
            verify_every: 1,
            seed: 0x5EED,
            paranoid: false,
            queue: DeliveryQueueKind::Auto,
        }
    }
}

/// Errors of the replay harness.
#[derive(Debug)]
pub enum ReplayError {
    /// The policy cannot maintain the requested structure kind.
    UnsupportedPolicy {
        /// The rejected policy label.
        policy: &'static str,
        /// The requested kind.
        kind: TreeKind,
    },
    /// The trace is not applicable to the base graph.
    InvalidTrace(String),
    /// A repair algorithm failed.
    Core(CoreError),
    /// A batch application failed partway. The wrapped [`BatchError`] names
    /// the failing update and the outcomes of the applied prefix, so the
    /// harness can report exactly which state the forest was left in.
    Batch(BatchError),
    /// A baseline failed.
    Congest(CongestError),
    /// The maintained structure diverged from the sequential oracle.
    OracleMismatch {
        /// Index of the top-level event after which verification failed.
        event: usize,
        /// The oracle's explanation.
        detail: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnsupportedPolicy { policy, kind } => {
                write!(f, "policy {policy} cannot maintain a {kind:?}")
            }
            ReplayError::InvalidTrace(msg) => write!(f, "invalid trace: {msg}"),
            ReplayError::Core(e) => write!(f, "repair failed: {e}"),
            ReplayError::Batch(e) => write!(f, "repair failed: {e}"),
            ReplayError::Congest(e) => write!(f, "baseline failed: {e}"),
            ReplayError::OracleMismatch { event, detail } => {
                write!(f, "oracle mismatch after event {event}: {detail}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<CoreError> for ReplayError {
    fn from(e: CoreError) -> Self {
        ReplayError::Core(e)
    }
}

impl From<BatchError> for ReplayError {
    fn from(e: BatchError) -> Self {
        ReplayError::Batch(e)
    }
}

impl From<CongestError> for ReplayError {
    fn from(e: CongestError) -> Self {
        ReplayError::Congest(e)
    }
}

/// Replays workloads under a [`ReplayConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayHarness {
    /// The run configuration.
    pub config: ReplayConfig,
}

impl ReplayHarness {
    /// A harness with the given configuration.
    pub fn new(config: ReplayConfig) -> Self {
        ReplayHarness { config }
    }

    /// Whether verification is due after top-level event `i` of `total`.
    fn checkpoint_due(&self, i: usize, total: usize) -> bool {
        let last = i + 1 == total;
        match self.config.verify_every {
            0 => last,
            k => last || (i + 1).is_multiple_of(k),
        }
    }

    /// Replays `workload` over `base` under `policy`, returning the
    /// per-event and cumulative cost report.
    ///
    /// # Errors
    ///
    /// See [`ReplayError`]; in particular every checkpoint compares against
    /// the sequential Kruskal oracle and fails loudly on divergence.
    pub fn replay(
        &self,
        base: &Graph,
        workload: &Workload,
        policy: MaintenancePolicy,
    ) -> Result<ReplayReport, ReplayError> {
        self.replay_with(base, workload, policy, None)
    }

    /// Like [`Self::replay`], but additionally emits one [`TraceRecord`] per
    /// top-level event to `observer` (and a final [`Observer::on_finish`]).
    ///
    /// Observation is pure: the returned report is bit-identical to the one
    /// [`Self::replay`] produces, and every record's per-phase ledger sums to
    /// its total cost delta exactly (asserted per event).
    ///
    /// # Errors
    ///
    /// Same as [`Self::replay`].
    pub fn replay_observed(
        &self,
        base: &Graph,
        workload: &Workload,
        policy: MaintenancePolicy,
        observer: &mut dyn Observer,
    ) -> Result<ReplayReport, ReplayError> {
        let report = self.replay_with(base, workload, policy, Some(observer))?;
        Ok(report)
    }

    fn replay_with(
        &self,
        base: &Graph,
        workload: &Workload,
        policy: MaintenancePolicy,
        observer: Option<&mut dyn Observer>,
    ) -> Result<ReplayReport, ReplayError> {
        if !policy.supports(self.config.kind) {
            return Err(ReplayError::UnsupportedPolicy {
                policy: policy.label(),
                kind: self.config.kind,
            });
        }
        workload.check_applicable(base).map_err(ReplayError::InvalidTrace)?;
        match policy {
            MaintenancePolicy::Impromptu | MaintenancePolicy::BatchedRepair => {
                self.replay_impromptu(base, workload, policy, observer)
            }
            _ => self.replay_rebuild(base, workload, policy, observer),
        }
    }

    fn report_skeleton(
        &self,
        base: &Graph,
        workload: &Workload,
        policy: MaintenancePolicy,
    ) -> ReplayReport {
        ReplayReport {
            scenario: workload.scenario.clone(),
            workload_name: workload.name.clone(),
            workload_fingerprint: workload.fingerprint(),
            policy: policy.label().to_string(),
            tree_kind: match self.config.kind {
                TreeKind::Mst => "mst".to_string(),
                TreeKind::St => "st".to_string(),
            },
            scheduler: scheduler_label(self.config.scheduler),
            n: base.node_count(),
            m_initial: base.edge_count(),
            top_level_events: workload.len(),
            primitive_events: workload.primitive_count(),
            build: CostReport::default(),
            per_event: Vec::new(),
            total: CostReport::default(),
            mean_messages_per_event: 0.0,
            max_messages_per_event: 0,
            checkpoints_verified: 0,
        }
    }

    /// Verifies a claimed forest snapshot against the incremental shadow
    /// oracle (and, in paranoid mode, against the full sequential path too).
    fn verify_checkpoint(
        &self,
        oracle: &ShadowOracle,
        snapshot: &SpanningForest,
        event: usize,
    ) -> Result<(), ReplayError> {
        let fast = match self.config.kind {
            TreeKind::Mst => oracle.verify_msf(snapshot),
            TreeKind::St => oracle.verify_forest(snapshot),
        };
        fast.map_err(|detail| ReplayError::OracleMismatch { event, detail })?;
        if self.config.paranoid {
            oracle
                .self_check()
                .and_then(|()| match self.config.kind {
                    TreeKind::Mst => verify_mst(oracle.graph(), snapshot),
                    TreeKind::St => verify_spanning_forest(oracle.graph(), snapshot),
                })
                .map_err(|detail| ReplayError::OracleMismatch {
                    event,
                    detail: format!("paranoid check: {detail}"),
                })?;
        }
        Ok(())
    }

    // -- impromptu (sequential and batched) --------------------------------

    fn replay_impromptu(
        &self,
        base: &Graph,
        workload: &Workload,
        policy: MaintenancePolicy,
        mut observer: Option<&mut dyn Observer>,
    ) -> Result<ReplayReport, ReplayError> {
        let options = MaintainOptions {
            config: KktConfig::default(),
            build_scheduler: Scheduler::Synchronous,
            repair_scheduler: self.config.scheduler,
            seed: self.config.seed,
            queue: self.config.queue,
        };
        let mut forest = MaintainedForest::build(base.clone(), self.config.kind, options)?;
        let mut report = self.report_skeleton(base, workload, policy);
        report.build = forest.build_cost();

        // The oracle's shadow graph tracks the evolving topology so
        // weight-change events convert to the right Update direction even
        // inside bursts, while its incremental forest prices checkpoints.
        let mut oracle = ShadowOracle::new(base);
        let total = workload.len();
        for (i, event) in workload.events.iter().enumerate() {
            let updates =
                primitives_as_updates(event, &mut oracle).map_err(ReplayError::InvalidTrace)?;
            let before = forest.cost();
            let ledger_before = forest.phase_ledger();
            let outcomes = match policy {
                // One full repair per primitive, even inside bursts.
                MaintenancePolicy::Impromptu => forest.apply_batch_sequential(&updates)?,
                // Bursts repaired in one pipelined pass.
                _ => forest.apply_batch(&updates)?,
            };
            let delta = forest.cost() - before;
            report.push_event(i, event.kind(), delta);
            let verified = self.checkpoint_due(i, total);
            if verified {
                self.verify_checkpoint(&oracle, &forest.snapshot(), i)?;
                report.checkpoints_verified += 1;
            }
            if let Some(obs) = observer.as_deref_mut() {
                let phases = forest.phase_ledger() - ledger_before;
                emit_record(
                    obs,
                    i,
                    event.kind(),
                    outcomes_label(&outcomes),
                    verified,
                    phases,
                    delta,
                );
            }
        }
        report.finalize();
        if let Some(obs) = observer {
            obs.on_finish();
        }
        Ok(report)
    }

    // -- rebuild policies --------------------------------------------------

    /// Runs one from-scratch construction on the reusable scratch network.
    ///
    /// The scratch arena replaces the old per-event `graph.clone()` +
    /// `Network::new`: [`Network::reset`] restores the pristine
    /// pre-construction state (no marks, zero cost, RNG reseeded from the
    /// step-mixed seed), which is observationally identical to a fresh
    /// network — same seeds, same graph, same `EdgeId`s — without paying an
    /// O(m) topology rebuild per event.
    fn rebuild_in(
        &self,
        net: &mut Network,
        policy: MaintenancePolicy,
        step: usize,
    ) -> Result<CostReport, ReplayError> {
        // Each rebuild's seed mixes the step in, deterministically: the same
        // trace always costs the same.
        let seed = self.config.seed ^ (step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let scheduler = match policy {
            // GHS is specified in synchronous rounds; the others are
            // broadcast-echo/flooding cascades that tolerate any delivery.
            MaintenancePolicy::RebuildGhs => Scheduler::Synchronous,
            _ => self.config.scheduler,
        };
        net.reset(NetworkConfig {
            scheduler,
            seed,
            queue: self.config.queue,
            ..NetworkConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15E_A5E0);
        match (policy, self.config.kind) {
            (MaintenancePolicy::RebuildKkt, TreeKind::Mst) => {
                build_mst(net, &KktConfig::default(), &mut rng)?;
            }
            (MaintenancePolicy::RebuildKkt, TreeKind::St) => {
                build_st(net, &KktConfig::default(), &mut rng)?;
            }
            (MaintenancePolicy::RebuildGhs, _) => {
                build_mst_ghs(net);
            }
            (MaintenancePolicy::RebuildFlood, _) => {
                // Flood from one representative per component: flooding only
                // spans the root's component, and partition scenarios really
                // do disconnect the network.
                for root in component_representatives(net.graph()) {
                    build_st_by_flooding(net, root)?;
                }
            }
            (MaintenancePolicy::Impromptu | MaintenancePolicy::BatchedRepair, _) => {
                unreachable!("handled by replay_impromptu")
            }
        }
        Ok(net.cost())
    }

    fn replay_rebuild(
        &self,
        base: &Graph,
        workload: &Workload,
        policy: MaintenancePolicy,
        mut observer: Option<&mut dyn Observer>,
    ) -> Result<ReplayReport, ReplayError> {
        let mut report = self.report_skeleton(base, workload, policy);
        let mut oracle = ShadowOracle::new(base);
        // One scratch network per policy, reset (not re-cloned) per event.
        // Its graph mirrors the oracle's update-for-update, so `EdgeId`s stay
        // aligned with the oracle's forest across the whole trace.
        let mut scratch = Network::new(base.clone(), NetworkConfig::default());
        report.build = self.rebuild_in(&mut scratch, policy, usize::MAX)?;

        let total = workload.len();
        for (i, event) in workload.events.iter().enumerate() {
            let updates =
                primitives_as_updates(event, &mut oracle).map_err(ReplayError::InvalidTrace)?;
            mirror_updates(&mut scratch, &updates)?;
            let cost = self.rebuild_in(&mut scratch, policy, i)?;
            report.push_event(i, event.kind(), cost);
            let verified = self.checkpoint_due(i, total);
            if verified {
                self.verify_checkpoint(&oracle, &scratch.marked_forest_snapshot(), i)?;
                report.checkpoints_verified += 1;
            }
            if let Some(obs) = observer.as_deref_mut() {
                // `Network::reset` zeroed the ledger with the counters, so
                // the scratch ledger *is* this event's attribution.
                emit_record(
                    obs,
                    i,
                    event.kind(),
                    "rebuilt".to_string(),
                    verified,
                    scratch.phase_ledger(),
                    cost,
                );
            }
        }
        report.finalize();
        if let Some(obs) = observer {
            obs.on_finish();
        }
        Ok(report)
    }
}

/// Builds one event's trace record and hands it to the observer — after
/// asserting the phase ledger conserves against the event's cost delta, which
/// is the tracing layer's core invariant (attribution never loses a bit).
fn emit_record(
    observer: &mut dyn Observer,
    index: usize,
    kind: String,
    outcome: String,
    verified: bool,
    phases: PhaseLedger,
    delta: CostReport,
) {
    let total = phases.total();
    assert!(
        total.messages == delta.messages
            && total.bits == delta.bits
            && total.time == delta.time
            && total.broadcast_echoes == delta.broadcast_echoes,
        "phase ledger does not conserve at event {index}: phase sum {total:?} vs totals {delta:?}"
    );
    let record = TraceRecord {
        index,
        kind,
        outcome,
        checkpoint: if verified { "verified" } else { "skipped" }.to_string(),
        phases,
        total,
    };
    observer.on_event(&record);
}

/// Deterministic per-event outcome label: the applied primitives' outcomes
/// joined with `+` (bursts), `noop` for an empty event.
fn outcomes_label(outcomes: &[UpdateOutcome]) -> String {
    if outcomes.is_empty() {
        return "noop".to_string();
    }
    outcomes.iter().map(outcome_label).collect::<Vec<_>>().join("+")
}

fn outcome_label(outcome: &UpdateOutcome) -> &'static str {
    match outcome {
        UpdateOutcome::Deleted(DeleteOutcome::NotATreeEdge) => "non_tree_delete",
        UpdateOutcome::Deleted(DeleteOutcome::Bridge) => "bridge",
        UpdateOutcome::Deleted(DeleteOutcome::Replaced(_)) => "replaced",
        UpdateOutcome::Deleted(DeleteOutcome::BatchRepaired) => "batch_repaired",
        UpdateOutcome::Inserted(InsertOutcome::MergedFragments) => "merged",
        UpdateOutcome::Inserted(InsertOutcome::Swapped { .. }) => "swapped",
        UpdateOutcome::Inserted(InsertOutcome::NotNeeded) => "not_needed",
        UpdateOutcome::Reweighted => "reweighted",
    }
}

/// Applies the oracle-validated updates of one top-level event to the scratch
/// network's graph, keeping it (and its `EdgeId` allocation order) in
/// lockstep with the oracle's shadow graph.
fn mirror_updates(net: &mut Network, updates: &[Update]) -> Result<(), ReplayError> {
    for update in updates {
        let applied = match *update {
            Update::Delete { u, v } => net.delete_edge(u, v).is_some(),
            Update::Insert { u, v, weight } => net.insert_edge(u, v, weight).is_some(),
            Update::IncreaseWeight { u, v, weight } | Update::DecreaseWeight { u, v, weight } => {
                net.change_weight(u, v, weight).is_some()
            }
        };
        if !applied {
            return Err(ReplayError::InvalidTrace(format!(
                "scratch network diverged from the oracle on {update:?}"
            )));
        }
    }
    Ok(())
}

/// Flattens a top-level event into `Update`s against (and applied to) the
/// evolving shadow oracle.
fn primitives_as_updates(
    event: &WorkloadEvent,
    oracle: &mut ShadowOracle,
) -> Result<Vec<Update>, String> {
    let mut updates = Vec::new();
    for primitive in event.primitives() {
        let update = primitive
            .as_update(oracle.graph())
            .ok_or_else(|| format!("inapplicable event {primitive:?}"))?;
        oracle.apply(&update)?;
        updates.push(update);
    }
    Ok(updates)
}

/// The smallest node of every connected component.
fn component_representatives(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut reps = Vec::new();
    for s in 0..n {
        if seen[s] {
            continue;
        }
        reps.push(s);
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(x) = stack.pop() {
            for e in g.incident(x) {
                let y = g.edge(e).other(x);
                if !seen[y] {
                    seen[y] = true;
                    stack.push(y);
                }
            }
        }
    }
    reps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{MultiEdgeCuts, PartitionHeal, PoissonChurn, Scenario};
    use kkt_graphs::generators;

    fn base(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::connected_gnp(20, 0.3, 300, &mut rng)
    }

    #[test]
    fn impromptu_replay_verifies_and_accounts() {
        let g = base(1);
        let w = PoissonChurn::default().generate(&g, 10, 5);
        let harness = ReplayHarness::default();
        let report = harness.replay(&g, &w, MaintenancePolicy::Impromptu).unwrap();
        assert_eq!(report.per_event.len(), w.len());
        assert_eq!(report.checkpoints_verified, w.len());
        assert!(report.total.messages > 0);
        assert!(report.build.messages > 0);
        assert_eq!(report.policy, "impromptu_repair");
    }

    #[test]
    fn rebuild_policies_verify_too() {
        let g = base(2);
        let w = PoissonChurn::default().generate(&g, 4, 6);
        let harness = ReplayHarness::default();
        for policy in [MaintenancePolicy::RebuildKkt, MaintenancePolicy::RebuildGhs] {
            let report = harness.replay(&g, &w, policy).unwrap();
            assert_eq!(report.checkpoints_verified, w.len());
            assert!(report.total.messages > 0, "{}", policy.label());
        }
    }

    #[test]
    fn st_flood_policy_handles_partitions() {
        let g = base(3);
        let w = PartitionHeal::default().generate(&g, 4, 7);
        let harness =
            ReplayHarness::new(ReplayConfig { kind: TreeKind::St, ..ReplayConfig::default() });
        for policy in [MaintenancePolicy::Impromptu, MaintenancePolicy::RebuildFlood] {
            let report = harness.replay(&g, &w, policy).unwrap();
            assert_eq!(report.checkpoints_verified, w.len(), "{}", policy.label());
        }
    }

    #[test]
    fn batched_repair_verifies_on_every_standard_scenario_and_both_kinds() {
        let g = base(7);
        for kind in [TreeKind::Mst, TreeKind::St] {
            let harness = ReplayHarness::new(ReplayConfig { kind, ..ReplayConfig::default() });
            for scenario in crate::scenarios::standard_suite(300) {
                let w = scenario.generate(&g, 6, 11);
                let report = harness
                    .replay(&g, &w, MaintenancePolicy::BatchedRepair)
                    .unwrap_or_else(|e| panic!("{:?}/{}: {e}", kind, scenario.id()));
                assert!(report.checkpoints_verified > 0);
                assert_eq!(report.policy, "batched_repair");
            }
        }
    }

    #[test]
    fn batched_repair_beats_sequential_on_multi_edge_bursts() {
        let g = base(8);
        let w = MultiEdgeCuts { burst_size: 5, max_weight: 300 }.generate(&g, 6, 13);
        let harness = ReplayHarness::default();
        let sequential = harness.replay(&g, &w, MaintenancePolicy::Impromptu).unwrap();
        let batched = harness.replay(&g, &w, MaintenancePolicy::BatchedRepair).unwrap();
        assert_eq!(sequential.checkpoints_verified, w.len());
        assert_eq!(batched.checkpoints_verified, w.len());
        assert!(
            batched.total.bits < sequential.total.bits,
            "batched {} bits vs sequential {} bits",
            batched.total.bits,
            sequential.total.bits
        );
    }

    #[test]
    fn batched_replay_is_deterministic() {
        let g = base(9);
        let w = MultiEdgeCuts::default().generate(&g, 4, 15);
        let harness = ReplayHarness::default();
        let a = harness.replay(&g, &w, MaintenancePolicy::BatchedRepair).unwrap();
        let b = harness.replay(&g, &w, MaintenancePolicy::BatchedRepair).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn checkpoint_due_boundaries() {
        let with = |verify_every| {
            ReplayHarness::new(ReplayConfig { verify_every, ..ReplayConfig::default() })
        };
        // verify_every = 0: the final event only.
        let h0 = with(0);
        assert!((0..9).all(|i| !h0.checkpoint_due(i, 10)));
        assert!(h0.checkpoint_due(9, 10));
        assert!(h0.checkpoint_due(0, 1), "a one-event trace checkpoints its only event");
        // verify_every = 1: every event.
        let h1 = with(1);
        assert!((0..10).all(|i| h1.checkpoint_due(i, 10)));
        // verify_every = k: every k-th event, plus the last even when the
        // trace length is not a multiple of k.
        let h4 = with(4);
        let due: Vec<usize> = (0..10).filter(|&i| h4.checkpoint_due(i, 10)).collect();
        assert_eq!(due, vec![3, 7, 9], "events 4, 8 and the final 10th");
        // ... and no double-count when the last event is itself a multiple.
        let due8: Vec<usize> = (0..8).filter(|&i| h4.checkpoint_due(i, 8)).collect();
        assert_eq!(due8, vec![3, 7]);
        // An interval larger than the trace still verifies the end.
        let h99 = with(99);
        let due99: Vec<usize> = (0..5).filter(|&i| h99.checkpoint_due(i, 5)).collect();
        assert_eq!(due99, vec![4]);
    }

    #[test]
    fn verify_every_zero_and_one_count_checkpoints() {
        // The checkpoint arithmetic observed end-to-end: the report's
        // verified count matches the boundary rules.
        let g = base(10);
        let w = PoissonChurn::default().generate(&g, 7, 21);
        assert_eq!(w.len(), 7);
        for (verify_every, expected) in [(0usize, 1usize), (1, 7), (3, 3), (7, 1), (99, 1)] {
            let harness =
                ReplayHarness::new(ReplayConfig { verify_every, ..ReplayConfig::default() });
            let report = harness.replay(&g, &w, MaintenancePolicy::Impromptu).unwrap();
            assert_eq!(
                report.checkpoints_verified,
                expected,
                "verify_every = {verify_every} over {} events",
                w.len()
            );
        }
    }

    #[test]
    fn paranoid_mode_replays_and_verifies() {
        // Paranoid checkpoints run the incremental oracle *and* the full
        // sequential verification; costs and fingerprints must not change.
        let g = base(11);
        let w = MultiEdgeCuts::default().generate(&g, 4, 27);
        let fast = ReplayHarness::default();
        let paranoid =
            ReplayHarness::new(ReplayConfig { paranoid: true, ..ReplayConfig::default() });
        for policy in [MaintenancePolicy::Impromptu, MaintenancePolicy::RebuildKkt] {
            let a = fast.replay(&g, &w, policy).unwrap();
            let b = paranoid.replay(&g, &w, policy).unwrap();
            assert_eq!(a, b, "{}: paranoid mode is observationally identical", policy.label());
        }
    }

    #[test]
    fn unsupported_policy_is_rejected() {
        let g = base(4);
        let w = PoissonChurn::default().generate(&g, 2, 8);
        let harness = ReplayHarness::default(); // MST
        assert!(matches!(
            harness.replay(&g, &w, MaintenancePolicy::RebuildFlood),
            Err(ReplayError::UnsupportedPolicy { .. })
        ));
        assert!(!MaintenancePolicy::RebuildGhs.supports(TreeKind::St));
        assert!(MaintenancePolicy::BatchedRepair.supports(TreeKind::St));
        assert_eq!(MaintenancePolicy::all_for(TreeKind::Mst).len(), 4);
        assert_eq!(MaintenancePolicy::all_for(TreeKind::St).len(), 4);
    }

    #[test]
    fn replay_is_deterministic() {
        let g = base(5);
        let w = PoissonChurn::default().generate(&g, 6, 9);
        let harness = ReplayHarness::default();
        let a = harness.replay(&g, &w, MaintenancePolicy::Impromptu).unwrap();
        let b = harness.replay(&g, &w, MaintenancePolicy::Impromptu).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn synchronous_and_async_schedulers_both_verify() {
        let g = base(6);
        let w = PoissonChurn::default().generate(&g, 6, 10);
        for scheduler in [Scheduler::Synchronous, Scheduler::RandomAsync { max_delay: 6 }] {
            let harness = ReplayHarness::new(ReplayConfig { scheduler, ..ReplayConfig::default() });
            let report = harness.replay(&g, &w, MaintenancePolicy::Impromptu).unwrap();
            assert_eq!(report.checkpoints_verified, w.len());
        }
    }
}
